//! Configuration types of the variational analysis.

use vaem_fvm::SolverOptions;
use vaem_variation::GeometricModel;

/// Surface-roughness variation settings (the σ_G / η of the paper).
#[derive(Debug, Clone)]
pub struct RoughnessConfig {
    /// Standard deviation of the interface-node offsets (µm);
    /// the paper uses 0.5 µm.
    pub sigma: f64,
    /// Correlation length η of the roughness (µm); the paper uses 0.7 µm.
    pub correlation_length: f64,
    /// Geometric transfer model (traditional vs. the paper's CSV model).
    pub model: GeometricModel,
    /// Names of the rough facets to perturb; empty means "all facets of the
    /// structure".
    pub facets: Vec<String>,
    /// Groups of facet names that share one correlated variable set (the
    /// paper merges coplanar TSV walls into one 128-node group). Facets not
    /// mentioned in any group form their own group.
    pub merged_groups: Vec<Vec<String>>,
}

impl RoughnessConfig {
    /// Paper-style defaults: σ_G = 0.5 µm, η = 0.7 µm, continuous model,
    /// all facets, no merging.
    pub fn paper_default() -> Self {
        Self {
            sigma: 0.5,
            correlation_length: 0.7,
            model: GeometricModel::ContinuousSurface,
            facets: Vec::new(),
            merged_groups: Vec::new(),
        }
    }
}

/// Random-doping-fluctuation settings (the σ_M / η of the paper).
#[derive(Debug, Clone)]
pub struct DopingVariationConfig {
    /// Relative standard deviation of the donor concentration (0.10 in the
    /// paper).
    pub relative_sigma: f64,
    /// Correlation length η (µm); 0.5 µm in the paper.
    pub correlation_length: f64,
    /// Depth (µm) below the top of the semiconductor region within which
    /// nodes carry an RDF variable (the region that actually matters for the
    /// interface current).
    pub region_depth: f64,
    /// Upper bound on the number of RDF variables; nodes are subsampled
    /// uniformly when the region contains more.
    pub max_nodes: usize,
}

impl DopingVariationConfig {
    /// Paper-style defaults: 10 % relative sigma, η = 0.5 µm.
    pub fn paper_default() -> Self {
        Self {
            relative_sigma: 0.10,
            correlation_length: 0.5,
            region_depth: 2.5,
            max_nodes: 128,
        }
    }
}

/// One via of a TSV array, described by the four lateral-wall facets the
/// scalar radius/position parameters move together.
#[derive(Debug, Clone)]
pub struct ViaWalls {
    /// Terminal name of the via (used for group labels, e.g. `via_0_1`).
    pub name: String,
    /// Its four lateral-wall facet names, in `+x, -x, +y, -y` order (see
    /// `TsvArrayConfig::via_wall_facets`).
    pub facets: [String; 4],
}

/// Per-via scalar parameter variation of a TSV array: each via carries an
/// independent radius deviation δr (all four walls move outward together)
/// and an in-plane position deviation (δx, δy) — the "per-via pitch and
/// radius" knobs of the array coupling study. One variation group per via,
/// at most three Gaussian parameters each.
#[derive(Debug, Clone)]
pub struct ViaArrayVariationConfig {
    /// Standard deviation of the via radius (half-size) deviation (µm);
    /// 0 disables the radius parameter.
    pub sigma_radius: f64,
    /// Standard deviation of each in-plane centre-offset component (µm);
    /// 0 disables the position parameters. Offsetting a via centre is the
    /// local expression of pitch variation between neighbours.
    pub sigma_position: f64,
    /// The vias to perturb, with their wall facets.
    pub vias: Vec<ViaWalls>,
}

/// Which variation classes are active (the three rows of Table I, plus the
/// per-via parameter class of the TSV-array study).
#[derive(Debug, Clone, Default)]
pub struct VariationSpec {
    /// Surface-roughness settings; `None` disables geometric variation.
    pub roughness: Option<RoughnessConfig>,
    /// RDF settings; `None` disables doping variation.
    pub doping: Option<DopingVariationConfig>,
    /// Per-via scalar radius/position settings; `None` disables them.
    pub via_params: Option<ViaArrayVariationConfig>,
}

/// Variable-reduction scheme used before the collocation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionMethod {
    /// The paper's weighted principal factor analysis.
    #[default]
    Wpfa,
    /// Classical principal factor analysis (ablation baseline).
    Pfa,
}

/// Output quantities extracted from every deterministic solve.
#[derive(Debug, Clone)]
pub enum QuantitySet {
    /// Magnitude of the current through the metal–semiconductor interface of
    /// a terminal, in µA (Table I).
    InterfaceCurrent {
        /// Driven terminal (1 V excitation) whose interface current is
        /// reported.
        terminal: String,
    },
    /// One column of the Maxwell capacitance matrix in fF (Table II).
    CapacitanceColumn {
        /// Driven terminal.
        driven: String,
        /// Terminals whose capacitance to the driven terminal is reported,
        /// in output order.
        terminals: Vec<String>,
    },
}

impl QuantitySet {
    /// Labels of the outputs, in the order they are produced.
    pub fn labels(&self) -> Vec<String> {
        match self {
            QuantitySet::InterfaceCurrent { terminal } => {
                vec![format!("J({terminal}) [uA]")]
            }
            QuantitySet::CapacitanceColumn { driven, terminals } => terminals
                .iter()
                .map(|t| {
                    if t == driven {
                        format!("C_{driven} [fF]")
                    } else {
                        format!("C_{driven},{t} [fF]")
                    }
                })
                .collect(),
        }
    }

    /// Number of scalar outputs.
    pub fn len(&self) -> usize {
        match self {
            QuantitySet::InterfaceCurrent { .. } => 1,
            QuantitySet::CapacitanceColumn { terminals, .. } => terminals.len(),
        }
    }

    /// Returns `true` if the set produces no outputs (empty terminal list).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Full configuration of a variational analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Analysis frequency (Hz).
    pub frequency: f64,
    /// Nominal (unperturbed) donor concentration of the semiconductor
    /// region (µm⁻³).
    pub nominal_donor: f64,
    /// Active variation classes.
    pub variations: VariationSpec,
    /// Variable-reduction method.
    pub reduction: ReductionMethod,
    /// Energy fraction retained by the reduction (controls the reduced
    /// dimension, hence the collocation cost).
    pub energy_fraction: f64,
    /// Hard cap on the reduced dimension per variation group (0 = no cap).
    pub max_reduced_per_group: usize,
    /// Monte-Carlo sample count for the reference statistics.
    pub mc_runs: usize,
    /// RNG seed of the Monte-Carlo reference.
    pub seed: u64,
    /// Output quantities.
    pub quantities: QuantitySet,
    /// Deterministic-solver options.
    pub solver: SolverOptions,
    /// Largest tolerated fraction of quarantined samples (failed first
    /// attempt *and* recovery retry) before the whole run is aborted with
    /// [`AnalysisError::QuarantineExceeded`](crate::AnalysisError). Below
    /// the budget, quarantined collocation points are patched with the
    /// nominal outputs and quarantined Monte-Carlo runs are dropped from
    /// the statistics; the [`HealthReport`](crate::HealthReport) records
    /// every decision. 0 quarantines on the first failure.
    pub quarantine_budget: f64,
}

impl AnalysisConfig {
    /// Baseline configuration used by the experiments; callers override the
    /// fields they care about.
    pub fn new(quantities: QuantitySet) -> Self {
        Self {
            frequency: 1.0e9,
            nominal_donor: 1.0e5,
            variations: VariationSpec::default(),
            reduction: ReductionMethod::Wpfa,
            energy_fraction: 0.95,
            max_reduced_per_group: 12,
            mc_runs: 200,
            seed: 0x5eed,
            quantities,
            solver: SolverOptions::default(),
            quarantine_budget: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let r = RoughnessConfig::paper_default();
        assert_eq!(r.sigma, 0.5);
        assert_eq!(r.correlation_length, 0.7);
        let d = DopingVariationConfig::paper_default();
        assert_eq!(d.relative_sigma, 0.10);
        assert_eq!(d.correlation_length, 0.5);
    }

    #[test]
    fn quantity_labels_and_counts() {
        let q = QuantitySet::InterfaceCurrent {
            terminal: "plug1".into(),
        };
        assert_eq!(q.len(), 1);
        assert!(q.labels()[0].contains("plug1"));
        let c = QuantitySet::CapacitanceColumn {
            driven: "tsv1".into(),
            terminals: vec!["tsv1".into(), "tsv2".into(), "w1".into()],
        };
        assert_eq!(c.len(), 3);
        assert!(c.labels()[1].contains("tsv1,tsv2"));
        assert!(!c.is_empty());
    }

    #[test]
    fn analysis_config_defaults_are_sane() {
        let cfg = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".into(),
        });
        assert!(cfg.frequency > 0.0);
        assert!(cfg.energy_fraction > 0.5 && cfg.energy_fraction <= 1.0);
        assert!(cfg.mc_runs > 0);
        assert_eq!(cfg.reduction, ReductionMethod::Wpfa);
    }
}
