//! Variation-aware EM–semiconductor coupled solver for TSV structures in
//! 3D ICs — a from-scratch Rust reproduction of the DATE 2012 paper
//! *"Efficient Variation-Aware EM-Semiconductor Coupled Solver for the TSV
//! Structures in 3D IC"* (Xu, Yu, Chen, Jiang, Wong).
//!
//! The crate ties the substrate crates together into the paper's workflow:
//!
//! 1. **Describe** a hybrid metal/insulator/semiconductor structure
//!    ([`vaem_mesh`]) and its process variations: surface roughness on
//!    material interfaces and random doping fluctuation
//!    ([`VariationSpec`]).
//! 2. **Solve the nominal structure** with the coupled FVM solver
//!    ([`vaem_fvm`]) to obtain the output quantities and the influence
//!    weights of every variation variable.
//! 3. **Reduce** the correlated variables with PFA or the paper's weighted
//!    PFA ([`vaem_variation`]).
//! 4. **Propagate** the reduced variables with the sparse-grid spectral
//!    stochastic collocation method and compare against Monte Carlo
//!    ([`vaem_stochastic`]).
//!
//! The two pre-configured experiments of the paper's evaluation section live
//! in [`experiments`]: the metal-plug interface-current study (Table I) and
//! the TSV capacitance study (Table II).
//!
//! # Example
//!
//! ```no_run
//! use vaem::experiments::metalplug::MetalPlugExperiment;
//!
//! // Build a scaled-down Table-I style analysis and run SSCM vs MC.
//! let experiment = MetalPlugExperiment::quick();
//! let result = experiment.run().expect("analysis runs");
//! println!("{}", result.table().render());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod config;
pub mod experiments;
pub mod health;
pub mod report;

pub use analysis::{
    AdaptiveSweepOptions, AdaptiveSweepResult, AnalysisError, AnalysisResult, FrequencySweepResult,
    PointOrigin, QuantityResult, SweepQuantity, VariationalAnalysis,
};
pub use config::{
    AnalysisConfig, DopingVariationConfig, QuantitySet, ReductionMethod, RoughnessConfig,
    VariationSpec, ViaArrayVariationConfig, ViaWalls,
};
pub use health::{FailureCounts, FailureKind, HealthReport, QuarantinedSample, RecoveredSample};
pub use report::{result_digest, ComparisonTable};
pub use vaem_fvm::SeedReuseStats;

// Re-export the substrate crates for downstream users of the façade crate.
pub use vaem_fvm as fvm;
pub use vaem_mesh as mesh;
pub use vaem_numeric as numeric;
pub use vaem_physics as physics;
pub use vaem_sparse as sparse;
pub use vaem_stochastic as stochastic;
pub use vaem_variation as variation;
