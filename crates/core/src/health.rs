//! Failure taxonomy and run-health reporting for the analysis pipeline.
//!
//! The variational analysis fans out over many perturbed samples; a single
//! sample hitting a singular pivot or a NaN-poisoned solve must not abort the
//! whole statistical run. This module provides the vocabulary for that
//! containment layer:
//!
//! * [`FailureKind`] — a unified classification of every error the pipeline
//!   can produce ([`SparseError`](vaem_sparse::SparseError) pivot breakdowns,
//!   Krylov non-convergence, NaN-poisoned postprocessing, degenerate mesh
//!   configurations, ...).
//! * [`HealthReport`] — the per-run record of which samples were quarantined,
//!   which were rescued by the deterministic recovery retry, and the failure
//!   taxonomy counts. It is attached to
//!   [`AnalysisResult`](crate::AnalysisResult) and
//!   [`FrequencySweepResult`](crate::FrequencySweepResult), and its contents
//!   join the experiment digest so quarantine behaviour is covered by the
//!   bit-reproducibility gates.
//!
//! The quarantine policy itself (one recovery retry per failed sample with an
//! escalated direct-LU solver, nominal patching for collocation points,
//! dropping for Monte-Carlo runs, and a hard failure once the quarantine
//! budget is exceeded) lives in [`crate::analysis`].

use std::fmt;

use vaem_fvm::FvmError;
use vaem_sparse::SparseError;

use crate::analysis::AnalysisError;

/// Unified classification of pipeline failures.
///
/// Every [`AnalysisError`] maps onto exactly one kind via [`classify`]; the
/// counts per kind are reported in [`HealthReport::counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// A direct factorization hit a (nearly) zero pivot or a structurally
    /// missing diagonal.
    SingularPivot,
    /// An iterative solver stalled: Krylov non-convergence, recurrence
    /// breakdown, or a Newton iteration that ran out of steps with a finite
    /// residual.
    NonConvergence,
    /// A computed quantity came out NaN/∞ — a poisoned solve.
    NonFinite,
    /// The (perturbed) geometry was impossible to mesh.
    MeshDegenerate,
    /// Too many samples were quarantined; the statistics would no longer be
    /// trustworthy.
    BudgetExhausted,
    /// A configuration or dense-kernel error that containment cannot help
    /// with (unknown terminal, empty mesh, failed chaos fit, ...).
    Configuration,
}

impl FailureKind {
    /// Stable lower-case name used in reports and digests.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::SingularPivot => "singular-pivot",
            FailureKind::NonConvergence => "non-convergence",
            FailureKind::NonFinite => "non-finite",
            FailureKind::MeshDegenerate => "mesh-degenerate",
            FailureKind::BudgetExhausted => "budget-exhausted",
            FailureKind::Configuration => "configuration",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify an [`AnalysisError`] into the unified failure taxonomy.
pub fn classify(error: &AnalysisError) -> FailureKind {
    match error {
        AnalysisError::Solver(e) => classify_fvm(e),
        AnalysisError::Mesh(_) => FailureKind::MeshDegenerate,
        AnalysisError::QuarantineExceeded { .. } => FailureKind::BudgetExhausted,
        AnalysisError::Numeric(_) | AnalysisError::Configuration(_) => FailureKind::Configuration,
    }
}

fn classify_fvm(error: &FvmError) -> FailureKind {
    match error {
        FvmError::Linear(e) => match e {
            SparseError::ZeroPivot { .. } | SparseError::MissingDiagonal { .. } => {
                FailureKind::SingularPivot
            }
            SparseError::NotConverged { .. } | SparseError::Breakdown { .. } => {
                FailureKind::NonConvergence
            }
            SparseError::DimensionMismatch { .. } | SparseError::PatternMismatch { .. } => {
                FailureKind::Configuration
            }
        },
        // A Newton iteration whose update norm went NaN/∞ is a poisoned
        // solve, not a slow one; keep the two populations separate.
        FvmError::NewtonDidNotConverge { update_norm, .. } => {
            if update_norm.is_finite() {
                FailureKind::NonConvergence
            } else {
                FailureKind::NonFinite
            }
        }
        FvmError::NonFinite { .. } => FailureKind::NonFinite,
        FvmError::Configuration { .. } => FailureKind::Configuration,
    }
}

/// Number of failures observed per [`FailureKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureCounts {
    /// [`FailureKind::SingularPivot`] occurrences.
    pub singular_pivot: usize,
    /// [`FailureKind::NonConvergence`] occurrences.
    pub non_convergence: usize,
    /// [`FailureKind::NonFinite`] occurrences.
    pub non_finite: usize,
    /// [`FailureKind::MeshDegenerate`] occurrences.
    pub mesh_degenerate: usize,
    /// [`FailureKind::BudgetExhausted`] occurrences.
    pub budget_exhausted: usize,
    /// [`FailureKind::Configuration`] occurrences.
    pub configuration: usize,
}

impl FailureCounts {
    /// Increment the counter for `kind`.
    pub fn record(&mut self, kind: FailureKind) {
        match kind {
            FailureKind::SingularPivot => self.singular_pivot += 1,
            FailureKind::NonConvergence => self.non_convergence += 1,
            FailureKind::NonFinite => self.non_finite += 1,
            FailureKind::MeshDegenerate => self.mesh_degenerate += 1,
            FailureKind::BudgetExhausted => self.budget_exhausted += 1,
            FailureKind::Configuration => self.configuration += 1,
        }
    }

    /// Total failures across all kinds.
    pub fn total(&self) -> usize {
        self.singular_pivot
            + self.non_convergence
            + self.non_finite
            + self.mesh_degenerate
            + self.budget_exhausted
            + self.configuration
    }

    /// `(name, count)` pairs for the kinds with at least one occurrence, in
    /// the stable taxonomy order.
    pub fn nonzero(&self) -> Vec<(&'static str, usize)> {
        [
            (FailureKind::SingularPivot, self.singular_pivot),
            (FailureKind::NonConvergence, self.non_convergence),
            (FailureKind::NonFinite, self.non_finite),
            (FailureKind::MeshDegenerate, self.mesh_degenerate),
            (FailureKind::BudgetExhausted, self.budget_exhausted),
            (FailureKind::Configuration, self.configuration),
        ]
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(k, n)| (k.name(), n))
        .collect()
    }
}

/// The pipeline stage a sample belongs to. Mirrors the fault-injection stages
/// of [`vaem_parallel::faults`] so injected and organic failures are reported
/// in the same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SampleStage {
    /// The nominal (unperturbed) solve.
    Nominal,
    /// An SSCM collocation point (or an adaptive-sweep sample).
    Sscm,
    /// A Monte-Carlo run.
    Mc,
}

impl SampleStage {
    /// Stable lower-case name used in reports and digests.
    pub fn name(self) -> &'static str {
        match self {
            SampleStage::Nominal => "nominal",
            SampleStage::Sscm => "sscm",
            SampleStage::Mc => "mc",
        }
    }
}

impl fmt::Display for SampleStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One sample that failed its first attempt *and* its recovery retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedSample {
    /// Pipeline stage the sample belongs to.
    pub stage: SampleStage,
    /// Sample index within its stage (collocation point / MC run number).
    pub index: usize,
    /// Classified kind of the final (retry) failure.
    pub kind: FailureKind,
    /// Rendered error message of the final failure.
    pub detail: String,
}

/// One sample that failed its first attempt but succeeded on the recovery
/// retry with the escalated (direct-LU, donor-free) solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSample {
    /// Pipeline stage the sample belongs to.
    pub stage: SampleStage,
    /// Sample index within its stage.
    pub index: usize,
    /// Classified kind of the first-attempt failure.
    pub kind: FailureKind,
}

/// Health record of a variational-analysis run.
///
/// Attached to every analysis result; empty (all-zero) for a fully healthy
/// run so existing digests are unchanged when nothing fails.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Samples whose recovery retry also failed. Their outputs were patched
    /// with the nominal solution (SSCM/sweep stages) or dropped from the
    /// statistics (MC stage).
    pub quarantined: Vec<QuarantinedSample>,
    /// Samples rescued by the recovery retry; their outputs are trusted.
    pub recovered: Vec<RecoveredSample>,
    /// First-attempt failure counts per taxonomy kind (recovered samples
    /// count here too: the count records failures observed, not samples
    /// lost).
    pub counts: FailureCounts,
    /// Total samples attempted across all stages (including the nominal).
    pub samples_total: usize,
    /// Quarantine budget the run was checked against (fraction of
    /// `samples_total`).
    pub budget: f64,
}

impl HealthReport {
    /// `true` when no sample failed even once.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.recovered.is_empty() && self.counts.total() == 0
    }

    /// Indices quarantined in a given stage, in ascending order.
    pub fn quarantined_indices(&self, stage: SampleStage) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .quarantined
            .iter()
            .filter(|q| q.stage == stage)
            .map(|q| q.index)
            .collect();
        v.sort_unstable();
        v
    }

    /// Deterministic numeric encoding of the report for result digests.
    ///
    /// Encodes the counts, every quarantined `(stage, index, kind)` triple
    /// and every recovered triple as `f64`s, so two runs only share a digest
    /// when their containment behaviour was identical. An all-healthy report
    /// contributes nothing, keeping digests of clean runs identical to
    /// pre-containment builds.
    pub fn digest_values(&self) -> Vec<f64> {
        if self.is_clean() {
            return Vec::new();
        }
        let mut values = vec![
            self.counts.singular_pivot as f64,
            self.counts.non_convergence as f64,
            self.counts.non_finite as f64,
            self.counts.mesh_degenerate as f64,
            self.counts.budget_exhausted as f64,
            self.counts.configuration as f64,
            self.quarantined.len() as f64,
            self.recovered.len() as f64,
        ];
        for q in &self.quarantined {
            values.push(stage_code(q.stage));
            values.push(q.index as f64);
            values.push(kind_code(q.kind));
        }
        for r in &self.recovered {
            values.push(stage_code(r.stage));
            values.push(r.index as f64);
            values.push(kind_code(r.kind));
        }
        values
    }

    /// One-line human summary (`"healthy"` or quarantine/recovery counts).
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "healthy".to_string();
        }
        let taxonomy: Vec<String> = self
            .counts
            .nonzero()
            .into_iter()
            .map(|(name, n)| format!("{name}:{n}"))
            .collect();
        format!(
            "quarantined {} of {} samples, recovered {} ({})",
            self.quarantined.len(),
            self.samples_total,
            self.recovered.len(),
            taxonomy.join(", ")
        )
    }
}

fn stage_code(stage: SampleStage) -> f64 {
    match stage {
        SampleStage::Nominal => 1.0,
        SampleStage::Sscm => 2.0,
        SampleStage::Mc => 3.0,
    }
}

fn kind_code(kind: FailureKind) -> f64 {
    match kind {
        FailureKind::SingularPivot => 1.0,
        FailureKind::NonConvergence => 2.0,
        FailureKind::NonFinite => 3.0,
        FailureKind::MeshDegenerate => 4.0,
        FailureKind::BudgetExhausted => 5.0,
        FailureKind::Configuration => 6.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_mesh::MeshError;

    #[test]
    fn classify_covers_the_taxonomy() {
        let pivot = AnalysisError::Solver(FvmError::Linear(SparseError::ZeroPivot { index: 3 }));
        assert_eq!(classify(&pivot), FailureKind::SingularPivot);

        let diag = AnalysisError::Solver(FvmError::Linear(SparseError::MissingDiagonal { row: 1 }));
        assert_eq!(classify(&diag), FailureKind::SingularPivot);

        let krylov = AnalysisError::Solver(FvmError::Linear(SparseError::NotConverged {
            iterations: 100,
            residual: 1e-3,
        }));
        assert_eq!(classify(&krylov), FailureKind::NonConvergence);

        let breakdown = AnalysisError::Solver(FvmError::Linear(SparseError::Breakdown {
            detail: "rho = 0".to_string(),
        }));
        assert_eq!(classify(&breakdown), FailureKind::NonConvergence);

        let slow_newton = AnalysisError::Solver(FvmError::NewtonDidNotConverge {
            iterations: 60,
            update_norm: 1e-3,
        });
        assert_eq!(classify(&slow_newton), FailureKind::NonConvergence);

        let poisoned_newton = AnalysisError::Solver(FvmError::NewtonDidNotConverge {
            iterations: 2,
            update_norm: f64::NAN,
        });
        assert_eq!(classify(&poisoned_newton), FailureKind::NonFinite);

        let nonfinite = AnalysisError::Solver(FvmError::NonFinite {
            detail: "NaN terminal current".to_string(),
        });
        assert_eq!(classify(&nonfinite), FailureKind::NonFinite);

        let mesh = AnalysisError::Mesh(MeshError::DegenerateConfig {
            detail: "zero rows".to_string(),
        });
        assert_eq!(classify(&mesh), FailureKind::MeshDegenerate);

        let budget = AnalysisError::QuarantineExceeded {
            quarantined: 3,
            total: 10,
            budget: 0.1,
        };
        assert_eq!(classify(&budget), FailureKind::BudgetExhausted);

        let config = AnalysisError::Configuration("unknown terminal".to_string());
        assert_eq!(classify(&config), FailureKind::Configuration);
    }

    #[test]
    fn counts_record_and_enumerate() {
        let mut counts = FailureCounts::default();
        counts.record(FailureKind::SingularPivot);
        counts.record(FailureKind::SingularPivot);
        counts.record(FailureKind::NonFinite);
        assert_eq!(counts.total(), 3);
        assert_eq!(
            counts.nonzero(),
            vec![("singular-pivot", 2), ("non-finite", 1)]
        );
    }

    #[test]
    fn clean_report_contributes_nothing_to_digests() {
        let report = HealthReport::default();
        assert!(report.is_clean());
        assert!(report.digest_values().is_empty());
        assert_eq!(report.summary(), "healthy");
    }

    #[test]
    fn dirty_report_is_deterministically_encoded() {
        let mut report = HealthReport {
            samples_total: 20,
            budget: 0.1,
            ..Default::default()
        };
        report.counts.record(FailureKind::SingularPivot);
        report.quarantined.push(QuarantinedSample {
            stage: SampleStage::Sscm,
            index: 4,
            kind: FailureKind::SingularPivot,
            detail: "zero pivot at index 0".to_string(),
        });
        let values = report.digest_values();
        assert!(!values.is_empty());
        assert_eq!(values, report.digest_values());
        assert_eq!(report.quarantined_indices(SampleStage::Sscm), vec![4]);
        assert!(report.quarantined_indices(SampleStage::Mc).is_empty());
        assert!(report.summary().contains("quarantined 1 of 20"));
        assert!(report.summary().contains("singular-pivot:1"));
    }
}
