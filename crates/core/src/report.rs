//! Paper-style text tables comparing SSCM against Monte Carlo.

use crate::analysis::AnalysisResult;
use std::fmt;

/// A rendered comparison table in the style of the paper's Table I / II:
/// one row per output quantity and statistical indicator, with the
/// Monte-Carlo reference, the SSCM estimate and the relative error.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    footer: Vec<String>,
}

impl ComparisonTable {
    /// Builds the table from an analysis result.
    pub fn from_result(result: &AnalysisResult) -> Self {
        let header = vec![
            "quantity".to_string(),
            "indicator".to_string(),
            "MC".to_string(),
            "SSCM".to_string(),
            "rel. error".to_string(),
        ];
        let mut rows = Vec::new();
        for q in &result.quantities {
            rows.push(vec![
                q.label.clone(),
                "mean".to_string(),
                format_value(q.monte_carlo.mean),
                format_value(q.sscm.mean),
                format!("{:.3}%", 100.0 * q.mean_error()),
            ]);
            rows.push(vec![
                String::new(),
                "std".to_string(),
                format_value(q.monte_carlo.std),
                format_value(q.sscm.std),
                format!("{:.3}%", 100.0 * q.std_error()),
            ]);
        }
        let reductions = result
            .reductions
            .iter()
            .map(|g| format!("{}: {}->{}", g.name, g.full_dim, g.reduced_dim))
            .collect::<Vec<_>>()
            .join(", ");
        let footer = vec![
            format!("variable reduction: {reductions}"),
            format!(
                "solver runs: SSCM {} vs MC {}   wall clock: SSCM {:.2} s vs MC {:.2} s (speed-up {:.1}x)",
                result.collocation_runs,
                result.mc_runs,
                result.sscm_seconds,
                result.mc_seconds,
                result.speedup()
            ),
        ];
        Self {
            header,
            rows,
            footer,
        }
    }

    /// Table rows (excluding header/footer), mainly for tests.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for line in &self.footer {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e-3 && v.abs() < 1e4 {
        format!("{v:.6}")
    } else {
        format!("{v:.4e}")
    }
}

/// Stable FNV-1a digest over the exact bit patterns of a value sequence.
///
/// Used by the determinism smoke (`tsv_array --digest`, the CI thread
/// matrix, the tier-1 determinism tests) to compare results across thread
/// counts: two runs print the same digest if and only if every `f64` is
/// bit-for-bit identical, and the 16-hex-digit line is cheap to diff in a
/// shell. NaNs hash by their bit pattern like any other value.
pub fn result_digest(values: impl IntoIterator<Item = f64>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{GroupReduction, QuantityResult};
    use vaem_stochastic::SummaryStats;

    fn fake_result() -> AnalysisResult {
        AnalysisResult {
            quantities: vec![QuantityResult {
                label: "J(plug1) [uA]".to_string(),
                nominal: 0.0078,
                sscm: SummaryStats::new(0.0089, 7.9078e-4),
                monte_carlo: SummaryStats::new(0.0089, 7.9023e-4),
                main_effects: vec![0.4, 0.3, 0.1, 0.05, 0.03, 0.02],
            }],
            reductions: vec![GroupReduction {
                name: "plug1_interface".to_string(),
                full_dim: 16,
                reduced_dim: 6,
            }],
            collocation_runs: 85,
            mc_runs: 1000,
            sscm_seconds: 1.5,
            mc_seconds: 15.0,
            seed_reuse: Default::default(),
            health: Default::default(),
        }
    }

    #[test]
    fn table_contains_mean_and_std_rows() {
        let table = ComparisonTable::from_result(&fake_result());
        assert_eq!(table.rows().len(), 2);
        let text = table.render();
        assert!(text.contains("J(plug1)"));
        assert!(text.contains("mean"));
        assert!(text.contains("std"));
        assert!(text.contains("speed-up 10.0x"));
        assert!(text.contains("16->6"));
    }

    #[test]
    fn relative_errors_are_small_for_matching_stats() {
        let table = ComparisonTable::from_result(&fake_result());
        let text = table.render();
        // Mean is identical, std differs by <0.1%.
        assert!(text.contains("0.000%"));
    }

    #[test]
    fn display_matches_render() {
        let table = ComparisonTable::from_result(&fake_result());
        assert_eq!(format!("{table}"), table.render());
    }

    #[test]
    fn digest_is_stable_and_bit_sensitive() {
        let base = result_digest([1.0, 2.5, -0.125]);
        assert_eq!(base.len(), 16);
        assert_eq!(base, result_digest([1.0, 2.5, -0.125]));
        // One ULP flips the digest.
        assert_ne!(base, result_digest([1.0, 2.5, -0.125_f64.next_up()]));
        // Signed zero and NaN payloads are distinguished by bit pattern.
        assert_ne!(result_digest([0.0]), result_digest([-0.0]));
        assert_eq!(result_digest([f64::NAN]), result_digest([f64::NAN]));
    }
}
