//! Example B (paper Section IV.B, Table II): capacitances of the two-TSV
//! structure under lateral-wall roughness and substrate RDF.

use crate::analysis::{AnalysisResult, VariationalAnalysis};
use crate::config::{
    AnalysisConfig, DopingVariationConfig, QuantitySet, RoughnessConfig, VariationSpec,
};
use crate::report::ComparisonTable;
use crate::AnalysisError;
use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};

/// The Example-B experiment: TSV structure, variation setup and cost controls.
#[derive(Debug, Clone)]
pub struct TsvExperiment {
    /// Geometric configuration of the TSV structure.
    pub geometry: TsvConfig,
    /// Monte-Carlo sample count (the paper uses 10 000).
    pub mc_runs: usize,
    /// Energy fraction retained by the wPFA reduction.
    pub energy_fraction: f64,
    /// Cap on retained factors per variation group.
    pub max_reduced_per_group: usize,
    /// RNG seed for the Monte-Carlo reference.
    pub seed: u64,
    /// Analysis frequency (Hz) used for the capacitance extraction.
    pub frequency: f64,
}

impl TsvExperiment {
    /// Paper-scale configuration (fine mesh, 10 000-run MC). Long runtime;
    /// used by the benchmark harness in "full" mode.
    pub fn paper() -> Self {
        Self {
            geometry: TsvConfig::default(),
            mc_runs: 10_000,
            energy_fraction: 0.99,
            max_reduced_per_group: 6,
            seed: 2012,
            frequency: 1.0e9,
        }
    }

    /// A scaled-down configuration that runs in minutes on a laptop.
    pub fn quick() -> Self {
        Self {
            geometry: TsvConfig::coarse(),
            mc_runs: 40,
            energy_fraction: 0.90,
            max_reduced_per_group: 2,
            seed: 2012,
            frequency: 1.0e9,
        }
    }

    /// Overrides the Monte-Carlo sample count.
    pub fn with_mc_runs(mut self, runs: usize) -> Self {
        self.mc_runs = runs;
        self
    }

    /// Builds the [`VariationalAnalysis`] for this experiment.
    pub fn analysis(&self) -> VariationalAnalysis {
        let structure = build_tsv_structure(&self.geometry);
        let terminals = vec![
            "tsv1".to_string(),
            "tsv2".to_string(),
            "w1".to_string(),
            "w2".to_string(),
            "w3".to_string(),
            "w4".to_string(),
        ];
        let mut config = AnalysisConfig::new(QuantitySet::CapacitanceColumn {
            driven: "tsv1".to_string(),
            terminals,
        });
        config.frequency = self.frequency;
        config.nominal_donor = 1.0e5;
        config.mc_runs = self.mc_runs;
        config.energy_fraction = self.energy_fraction;
        config.max_reduced_per_group = self.max_reduced_per_group;
        config.seed = self.seed;
        // Roughness on the eight TSV lateral walls; the paper merges coplanar
        // facets of the two TSVs into common correlated groups.
        let roughness = RoughnessConfig {
            sigma: 0.5,
            correlation_length: 0.7,
            merged_groups: vec![
                vec!["tsv1+y".to_string(), "tsv2+y".to_string()],
                vec!["tsv1-y".to_string(), "tsv2-y".to_string()],
            ],
            ..RoughnessConfig::paper_default()
        };
        let doping = DopingVariationConfig {
            relative_sigma: 0.10,
            correlation_length: 0.5,
            region_depth: 5.0,
            max_nodes: 128,
        };
        config.variations = VariationSpec {
            roughness: Some(roughness),
            doping: Some(doping),
            via_params: None,
        };
        VariationalAnalysis::new(structure, config)
    }

    /// Runs the experiment and returns the analysis result.
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        self.analysis().run()
    }

    /// Runs the experiment and renders the paper-style table.
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn run_table(&self) -> Result<ComparisonTable, AnalysisError> {
        Ok(self.run()?.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantitySet;

    #[test]
    fn paper_parameters_match_section_iv_b() {
        let exp = TsvExperiment::paper();
        let analysis = exp.analysis();
        let cfg = analysis.config();
        match &cfg.quantities {
            QuantitySet::CapacitanceColumn { driven, terminals } => {
                assert_eq!(driven, "tsv1");
                assert_eq!(terminals.len(), 6);
            }
            other => panic!("unexpected quantity set {other:?}"),
        }
        let rough = cfg.variations.roughness.as_ref().unwrap();
        assert_eq!(rough.merged_groups.len(), 2);
        assert!(cfg.variations.doping.is_some());
        // Eight lateral walls are declared on the structure.
        assert_eq!(analysis.structure().rough_facets.len(), 8);
    }

    #[test]
    fn quick_configuration_is_cheaper_than_paper() {
        let quick = TsvExperiment::quick();
        let paper = TsvExperiment::paper();
        assert!(quick.mc_runs < paper.mc_runs);
        assert!(quick.max_reduced_per_group < paper.max_reduced_per_group);
        let s_quick = quick.analysis();
        let s_paper = paper.analysis();
        assert!(
            s_quick.structure().mesh.node_count() < s_paper.structure().mesh.node_count(),
            "quick mesh should be coarser"
        );
    }

    #[test]
    fn capacitance_labels_cover_all_terminals() {
        let exp = TsvExperiment::quick();
        let labels = exp.analysis().config().quantities.labels();
        assert_eq!(labels.len(), 6);
        assert!(labels[0].contains("C_tsv1"));
        assert!(labels[1].contains("tsv2"));
        assert!(labels[5].contains("w4"));
    }
}
