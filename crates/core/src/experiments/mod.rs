//! Pre-configured experiments reproducing the paper's evaluation section.
//!
//! * [`metalplug`] — Example A / Table I: interface current of the metal-plug
//!   structure under surface roughness and RDF.
//! * [`tsv`] — Example B / Table II: TSV capacitances under lateral-wall
//!   roughness and substrate RDF.
//! * [`tsv_array`] — the N×M TSV-array coupling workload: full
//!   coupling-capacitance / crosstalk matrices, aggressor/victim sweeps and
//!   per-via parameter statistics.

pub mod metalplug;
pub mod tsv;
pub mod tsv_array;
