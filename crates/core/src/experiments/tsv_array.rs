//! TSV-array coupling experiment: the N×M grid-of-vias workload of the
//! 3D-IC crosstalk literature (ROADMAP item 1).
//!
//! Three stages, all driven by the same mesh:
//!
//! 1. **Coupling-capacitance matrix** — the full K×K Maxwell matrix over
//!    the via terminals (`K = rows·cols`), extracted with one shared AC
//!    factorization ([`vaem_fvm::postprocess::capacitance_matrix`]).
//! 2. **Aggressor/victim sweep** — one via driven with 1 V over a log
//!    frequency grid; the induced current fraction at every other via
//!    ([`vaem_fvm::postprocess::coupling_ratio_spectrum`]) traces the
//!    S-curve from the capacitive plateau into substrate conduction.
//! 3. **Variation-aware crosstalk statistics** — per-via radius/position
//!    parameters ([`crate::config::ViaArrayVariationConfig`]) propagated
//!    through the SSCM/MC machinery, with per-group Sobol main effects
//!    answering which via's variation dominates each matrix entry.

use crate::analysis::{AnalysisError, AnalysisResult, VariationalAnalysis};
use crate::config::{
    AnalysisConfig, QuantitySet, VariationSpec, ViaArrayVariationConfig, ViaWalls,
};
use crate::report::result_digest;
use std::fmt::Write as _;
use vaem_fvm::{postprocess, CoupledSolver, SolverOptions};
use vaem_mesh::structures::tsv_array::{build_tsv_array_structure, TsvArrayConfig};
use vaem_physics::DopingProfile;

/// The TSV-array experiment: geometry, aggressor choice, variation sigmas
/// and cost controls.
#[derive(Debug, Clone)]
pub struct TsvArrayExperiment {
    /// Geometric configuration of the array.
    pub geometry: TsvArrayConfig,
    /// Grid position `(row, col)` of the aggressor via (driven with 1 V).
    pub aggressor: (usize, usize),
    /// Standard deviation of the per-via radius deviation (µm).
    pub sigma_radius: f64,
    /// Standard deviation of each per-via centre-offset component (µm).
    pub sigma_position: f64,
    /// Monte-Carlo sample count of the statistics stage.
    pub mc_runs: usize,
    /// Energy fraction retained by the variable reduction.
    pub energy_fraction: f64,
    /// Cap on retained factors per variation group.
    pub max_reduced_per_group: usize,
    /// RNG seed of the Monte-Carlo reference.
    pub seed: u64,
    /// Analysis frequency (Hz) of the capacitance extraction.
    pub frequency: f64,
    /// Number of points of the aggressor/victim frequency sweep.
    pub sweep_points: usize,
    /// Frequency range `(lo, hi)` of the sweep (Hz), swept log-uniformly.
    pub sweep_range: (f64, f64),
}

impl TsvArrayExperiment {
    /// Paper-scale 3×3 array on the fine mesh. Long runtime; used by the
    /// benchmark harness in "full" mode.
    pub fn paper() -> Self {
        Self {
            geometry: TsvArrayConfig::default(),
            aggressor: (1, 1),
            sigma_radius: 0.25,
            sigma_position: 0.25,
            mc_runs: 2000,
            energy_fraction: 0.99,
            max_reduced_per_group: 3,
            seed: 2012,
            frequency: 1.0e9,
            sweep_points: 13,
            sweep_range: (1.0e8, 1.0e11),
        }
    }

    /// A scaled-down 2×2 array that runs in seconds — the CI smoke and
    /// tier-1 test configuration.
    pub fn quick() -> Self {
        Self {
            geometry: TsvArrayConfig::coarse(2, 2),
            aggressor: (0, 0),
            sigma_radius: 0.25,
            sigma_position: 0.25,
            mc_runs: 24,
            energy_fraction: 0.90,
            max_reduced_per_group: 3,
            seed: 2012,
            frequency: 1.0e9,
            sweep_points: 5,
            sweep_range: (1.0e8, 1.0e10),
        }
    }

    /// Overrides the Monte-Carlo sample count.
    pub fn with_mc_runs(mut self, runs: usize) -> Self {
        self.mc_runs = runs;
        self
    }

    /// Overrides the sweep point count.
    pub fn with_sweep_points(mut self, points: usize) -> Self {
        self.sweep_points = points;
        self
    }

    /// Terminal name of the aggressor via.
    pub fn aggressor_name(&self) -> String {
        TsvArrayConfig::via_name(self.aggressor.0, self.aggressor.1)
    }

    /// The log-uniform frequency grid of the aggressor/victim sweep.
    pub fn sweep_grid(&self) -> Vec<f64> {
        let (lo, hi) = self.sweep_range;
        let n = self.sweep_points.max(2);
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
            .collect()
    }

    /// Builds the [`VariationalAnalysis`] of the statistics stage: the
    /// aggressor's capacitance column over every via terminal, under
    /// per-via radius/position variation.
    ///
    /// # Errors
    /// A degenerate geometry configuration (zero grid dimensions,
    /// overlapping liners) is reported as [`AnalysisError::Mesh`].
    pub fn analysis(&self) -> Result<VariationalAnalysis, AnalysisError> {
        let structure = build_tsv_array_structure(&self.geometry)?;
        let mut config = AnalysisConfig::new(QuantitySet::CapacitanceColumn {
            driven: self.aggressor_name(),
            terminals: self.geometry.via_names(),
        });
        config.frequency = self.frequency;
        config.nominal_donor = 1.0e5;
        config.mc_runs = self.mc_runs;
        config.energy_fraction = self.energy_fraction;
        config.max_reduced_per_group = self.max_reduced_per_group;
        config.seed = self.seed;
        let vias = (0..self.geometry.rows)
            .flat_map(|r| {
                (0..self.geometry.cols).map(move |c| ViaWalls {
                    name: TsvArrayConfig::via_name(r, c),
                    facets: TsvArrayConfig::via_wall_facets(r, c),
                })
            })
            .collect();
        config.variations = VariationSpec {
            roughness: None,
            doping: None,
            via_params: Some(ViaArrayVariationConfig {
                sigma_radius: self.sigma_radius,
                sigma_position: self.sigma_position,
                vias,
            }),
        };
        Ok(VariationalAnalysis::new(structure, config))
    }

    /// Solves the nominal array once and extracts the coupling matrices and
    /// the aggressor/victim sweep.
    ///
    /// # Errors
    /// Propagates deterministic-solver failures.
    pub fn nominal_report(&self) -> Result<TsvArrayReport, AnalysisError> {
        let structure = build_tsv_array_structure(&self.geometry)?;
        let semis = structure.semiconductor_nodes();
        let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);
        let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default())?;
        let dc = solver.solve_dc()?;

        // K×K coupling-capacitance matrix (fF), row = driven terminal.
        let names = self.geometry.via_names();
        let matrix = postprocess::capacitance_matrix(&solver, &dc, self.frequency)?;
        let coupling: Vec<Vec<f64>> = names
            .iter()
            .map(|driven| {
                let column = &matrix[driven];
                names.iter().map(|t| column[t] * 1.0e15).collect()
            })
            .collect();

        // Aggressor/victim current-ratio sweep.
        let aggressor = self.aggressor_name();
        let aggressor_index = names.iter().position(|n| n == &aggressor).ok_or_else(|| {
            AnalysisError::Configuration(format!("aggressor '{aggressor}' is not a via terminal"))
        })?;
        let grid = self.sweep_grid();
        let mut operator = solver.prepare_ac_sweep(&dc)?;
        let sweep = operator.sweep_terminal(&grid, &aggressor)?;
        let victims: Vec<VictimSpectrum> = names
            .iter()
            .enumerate()
            .filter(|(_, n)| **n != aggressor)
            .map(|(victim_index, victim)| {
                let spectrum =
                    postprocess::coupling_ratio_spectrum(&solver, &sweep, &aggressor, victim)?;
                Ok(VictimSpectrum {
                    victim: victim.clone(),
                    grid_distance: self.geometry.grid_distance(aggressor_index, victim_index),
                    spectrum,
                })
            })
            .collect::<Result<_, AnalysisError>>()?;

        Ok(TsvArrayReport {
            via_names: names,
            aggressor,
            frequency: self.frequency,
            coupling,
            victims,
        })
    }

    /// Runs the variation-aware statistics stage (SSCM + MC over the
    /// per-via parameters).
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        self.analysis()?.run()
    }
}

/// One victim's induced-current spectrum.
#[derive(Debug, Clone)]
pub struct VictimSpectrum {
    /// Victim terminal name.
    pub victim: String,
    /// Aggressor→victim grid distance in pitch units (1 = nearest
    /// neighbour, √2 = diagonal).
    pub grid_distance: f64,
    /// `(frequency_Hz, |I_victim|/|I_aggressor|)` pairs, sweep order.
    pub spectrum: Vec<(f64, f64)>,
}

/// Nominal results of the TSV-array experiment: coupling-capacitance
/// matrix, derived crosstalk matrix and the aggressor/victim sweep.
#[derive(Debug, Clone)]
pub struct TsvArrayReport {
    /// Via terminal names, row-major grid order (the matrix axis order).
    pub via_names: Vec<String>,
    /// The driven (aggressor) terminal of the sweep.
    pub aggressor: String,
    /// Extraction frequency (Hz) of the capacitance matrix.
    pub frequency: f64,
    /// Coupling-capacitance matrix (fF): `coupling[i][j] = C[driven i][measured j]`.
    pub coupling: Vec<Vec<f64>>,
    /// Per-victim induced-current spectra.
    pub victims: Vec<VictimSpectrum>,
}

impl TsvArrayReport {
    /// Crosstalk matrix derived from the coupling capacitances:
    /// `X[i][j] = -C[i][j] / C[j][j]` for `i ≠ j` — the coupling between
    /// aggressor `i` and victim `j`, normalised by the victim's self
    /// capacitance (positive, since couplings are negative). Diagonal
    /// entries are zero.
    pub fn crosstalk(&self) -> Vec<Vec<f64>> {
        let k = self.via_names.len();
        (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| {
                        if i == j {
                            0.0
                        } else {
                            -self.coupling[i][j] / self.coupling[j][j]
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Worst asymmetry of the coupling matrix, `max |C[i][j] − C[j][i]|`
    /// relative to the largest self capacitance — the reciprocity defect
    /// that the tier-1 tests bound.
    pub fn reciprocity_defect(&self) -> f64 {
        let k = self.via_names.len();
        let scale = (0..k)
            .map(|i| self.coupling[i][i].abs())
            .fold(1e-30_f64, f64::max);
        let mut worst = 0.0_f64;
        for i in 0..k {
            for j in (i + 1)..k {
                worst = worst.max((self.coupling[i][j] - self.coupling[j][i]).abs());
            }
        }
        worst / scale
    }

    /// Stable digest of every nominal result value (coupling matrix
    /// row-major, then each victim's sweep ratios), for the CI determinism
    /// matrix. See [`crate::report::result_digest`].
    pub fn digest(&self) -> String {
        let values = self
            .coupling
            .iter()
            .flatten()
            .copied()
            .chain(
                self.victims
                    .iter()
                    .flat_map(|v| v.spectrum.iter().map(|&(_, r)| r)),
            )
            .collect::<Vec<f64>>();
        result_digest(values)
    }

    /// Renders the coupling matrix, crosstalk matrix and aggressor/victim
    /// sweep as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let k = self.via_names.len();
        let _ = writeln!(
            out,
            "coupling-capacitance matrix C [fF] at {:.3e} Hz (row = driven):",
            self.frequency
        );
        let _ = writeln!(out, "{}", matrix_table(&self.via_names, &self.coupling));
        let _ = writeln!(
            out,
            "crosstalk matrix X[i][j] = -C[i][j]/C[j][j] (diagonal 0):"
        );
        let _ = writeln!(out, "{}", matrix_table(&self.via_names, &self.crosstalk()));
        let _ = writeln!(
            out,
            "aggressor/victim sweep: drive {} (1 V), induced |I_v|/|I_a| per victim:",
            self.aggressor
        );
        let _ = write!(out, "{:>12}", "f [Hz]");
        for v in &self.victims {
            let _ = write!(
                out,
                "  {:>12}",
                format!("{} d={:.2}", v.victim, v.grid_distance)
            );
        }
        let _ = writeln!(out);
        if let Some(first) = self.victims.first() {
            for p in 0..first.spectrum.len() {
                let _ = write!(out, "{:>12.4e}", first.spectrum[p].0);
                for v in &self.victims {
                    let _ = write!(out, "  {:>12.5e}", v.spectrum[p].1);
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(
            out,
            "reciprocity defect max|C[i][j]-C[j][i]|/maxC: {:.3e} over {k}x{k} entries",
            self.reciprocity_defect()
        );
        out
    }
}

/// Aligned K×K matrix with row/column terminal labels.
fn matrix_table(names: &[String], m: &[Vec<f64>]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "");
    for n in names {
        let _ = write!(out, "  {n:>10}");
    }
    let _ = writeln!(out);
    for (n, row) in names.iter().zip(m.iter()) {
        let _ = write!(out, "{n:>10}");
        for v in row {
            let _ = write!(out, "  {v:>10.4}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_configuration_builds_a_2x2_analysis() {
        let exp = TsvArrayExperiment::quick();
        let analysis = exp.analysis().unwrap();
        let cfg = analysis.config();
        match &cfg.quantities {
            QuantitySet::CapacitanceColumn { driven, terminals } => {
                assert_eq!(driven, "via_0_0");
                assert_eq!(terminals.len(), 4);
            }
            other => panic!("unexpected quantity set {other:?}"),
        }
        let via = cfg.variations.via_params.as_ref().unwrap();
        assert_eq!(via.vias.len(), 4);
        assert_eq!(via.vias[3].name, "via_1_1");
        assert_eq!(via.vias[3].facets[0], "via_1_1+x");
        assert!(cfg.variations.roughness.is_none());
        assert_eq!(analysis.structure().rough_facets.len(), 16);
    }

    #[test]
    fn paper_configuration_is_a_3x3_with_center_aggressor() {
        let exp = TsvArrayExperiment::paper();
        assert_eq!(exp.geometry.via_count(), 9);
        assert_eq!(exp.aggressor_name(), "via_1_1");
        assert!(exp.mc_runs > TsvArrayExperiment::quick().mc_runs);
    }

    #[test]
    fn sweep_grid_is_log_uniform_and_ordered() {
        let exp = TsvArrayExperiment::quick();
        let grid = exp.sweep_grid();
        assert_eq!(grid.len(), exp.sweep_points);
        assert!((grid[0] - exp.sweep_range.0).abs() < 1e-3 * exp.sweep_range.0);
        assert!((grid[grid.len() - 1] - exp.sweep_range.1).abs() < 1e-3 * exp.sweep_range.1);
        for w in grid.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Log-uniform: constant ratio between neighbours.
        let r0 = grid[1] / grid[0];
        for w in grid.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-9 * r0);
        }
    }

    #[test]
    fn crosstalk_and_digest_derive_from_the_coupling_matrix() {
        let report = TsvArrayReport {
            via_names: vec!["a".into(), "b".into()],
            aggressor: "a".into(),
            frequency: 1.0e9,
            coupling: vec![vec![10.0, -2.0], vec![-2.0, 8.0]],
            victims: vec![VictimSpectrum {
                victim: "b".into(),
                grid_distance: 1.0,
                spectrum: vec![(1.0e8, 0.1), (1.0e9, 0.2)],
            }],
        };
        let x = report.crosstalk();
        assert_eq!(x[0][0], 0.0);
        assert!((x[0][1] - 0.25).abs() < 1e-12, "-(-2)/8 = {}", x[0][1]);
        assert!((x[1][0] - 0.2).abs() < 1e-12, "-(-2)/10 = {}", x[1][0]);
        assert_eq!(report.reciprocity_defect(), 0.0);
        let d = report.digest();
        assert_eq!(d.len(), 16);
        let mut tweaked = report.clone();
        tweaked.coupling[1][0] = -2.0000000001;
        assert_ne!(d, tweaked.digest());
        let text = report.render();
        assert!(text.contains("crosstalk matrix"));
        assert!(text.contains("aggressor/victim sweep"));
    }
}
