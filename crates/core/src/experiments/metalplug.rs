//! Example A (paper Section IV.A, Table I): interface current of the
//! metal-plug-on-silicon structure under surface roughness and random doping
//! fluctuation at 1 GHz.

use crate::analysis::{AnalysisResult, VariationalAnalysis};
use crate::config::{
    AnalysisConfig, DopingVariationConfig, QuantitySet, RoughnessConfig, VariationSpec,
};
use crate::report::ComparisonTable;
use crate::AnalysisError;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

/// Which variation sources are active — the three rows of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableOneRow {
    /// σ_G ≠ 0, σ_M = 0 (geometry only).
    GeometryOnly,
    /// σ_G = 0, σ_M ≠ 0 (doping only).
    DopingOnly,
    /// σ_G ≠ 0, σ_M ≠ 0 (both).
    Both,
}

impl TableOneRow {
    /// All three rows in paper order.
    pub const ALL: [TableOneRow; 3] = [
        TableOneRow::GeometryOnly,
        TableOneRow::DopingOnly,
        TableOneRow::Both,
    ];

    /// The row label used by the paper.
    pub fn label(&self) -> &'static str {
        match self {
            TableOneRow::GeometryOnly => "sigma_G != 0, sigma_M = 0",
            TableOneRow::DopingOnly => "sigma_G = 0, sigma_M != 0",
            TableOneRow::Both => "sigma_G != 0, sigma_M != 0",
        }
    }
}

/// The Example-A experiment: structure, variation setup and cost controls.
#[derive(Debug, Clone)]
pub struct MetalPlugExperiment {
    /// Geometric configuration of the structure.
    pub geometry: MetalPlugConfig,
    /// Which variation sources are enabled.
    pub row: TableOneRow,
    /// Monte-Carlo sample count (the paper uses 10 000).
    pub mc_runs: usize,
    /// Energy fraction retained by the wPFA reduction.
    pub energy_fraction: f64,
    /// Cap on retained factors per variation group (bounds the collocation
    /// cost; 0 disables the cap).
    pub max_reduced_per_group: usize,
    /// RNG seed for the Monte-Carlo reference.
    pub seed: u64,
}

impl MetalPlugExperiment {
    /// Paper-scale configuration (fine mesh, large MC reference). Expect a
    /// long runtime; used by the benchmark harness in "full" mode.
    pub fn paper() -> Self {
        Self {
            geometry: MetalPlugConfig::default(),
            row: TableOneRow::Both,
            mc_runs: 10_000,
            energy_fraction: 0.99,
            max_reduced_per_group: 12,
            seed: 2012,
        }
    }

    /// A scaled-down configuration that runs in seconds: coarse mesh, small
    /// Monte-Carlo reference and tight reduction. Statistics are noisier but
    /// the qualitative comparisons (SSCM ≈ MC, geometry dominating doping)
    /// still hold.
    pub fn quick() -> Self {
        Self {
            geometry: MetalPlugConfig::coarse(),
            row: TableOneRow::Both,
            mc_runs: 60,
            energy_fraction: 0.90,
            max_reduced_per_group: 3,
            seed: 2012,
        }
    }

    /// Selects which Table-I row (variation combination) to run.
    pub fn with_row(mut self, row: TableOneRow) -> Self {
        self.row = row;
        self
    }

    /// Overrides the Monte-Carlo sample count.
    pub fn with_mc_runs(mut self, runs: usize) -> Self {
        self.mc_runs = runs;
        self
    }

    /// Builds the [`VariationalAnalysis`] for this experiment.
    pub fn analysis(&self) -> VariationalAnalysis {
        let structure = build_metalplug_structure(&self.geometry);
        let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
            terminal: "plug1".to_string(),
        });
        config.frequency = 1.0e9;
        config.nominal_donor = 1.0e5; // 1e17 cm^-3
        config.mc_runs = self.mc_runs;
        config.energy_fraction = self.energy_fraction;
        config.max_reduced_per_group = self.max_reduced_per_group;
        config.seed = self.seed;
        let roughness = RoughnessConfig {
            sigma: 0.5,
            correlation_length: 0.7,
            ..RoughnessConfig::paper_default()
        };
        let doping = DopingVariationConfig {
            relative_sigma: 0.10,
            correlation_length: 0.5,
            region_depth: 2.5,
            max_nodes: 72,
        };
        config.variations = match self.row {
            TableOneRow::GeometryOnly => VariationSpec {
                roughness: Some(roughness),
                doping: None,
                via_params: None,
            },
            TableOneRow::DopingOnly => VariationSpec {
                roughness: None,
                doping: Some(doping),
                via_params: None,
            },
            TableOneRow::Both => VariationSpec {
                roughness: Some(roughness),
                doping: Some(doping),
                via_params: None,
            },
        };
        VariationalAnalysis::new(structure, config)
    }

    /// Runs the experiment and returns the analysis result.
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn run(&self) -> Result<AnalysisResult, AnalysisError> {
        self.analysis().run()
    }

    /// Runs the experiment and renders the paper-style table.
    ///
    /// # Errors
    /// Propagates analysis failures.
    pub fn run_table(&self) -> Result<ComparisonTable, AnalysisError> {
        Ok(self.run()?.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantitySet;

    #[test]
    fn rows_enable_the_right_variation_sources() {
        let base = MetalPlugExperiment::quick();
        let g = base.clone().with_row(TableOneRow::GeometryOnly).analysis();
        assert!(g.config().variations.roughness.is_some());
        assert!(g.config().variations.doping.is_none());
        let d = base.clone().with_row(TableOneRow::DopingOnly).analysis();
        assert!(d.config().variations.roughness.is_none());
        assert!(d.config().variations.doping.is_some());
        let b = base.with_row(TableOneRow::Both).analysis();
        assert!(b.config().variations.roughness.is_some());
        assert!(b.config().variations.doping.is_some());
    }

    #[test]
    fn paper_parameters_match_section_iv_a() {
        let exp = MetalPlugExperiment::paper();
        let analysis = exp.analysis();
        let cfg = analysis.config();
        assert_eq!(cfg.frequency, 1.0e9);
        let rough = cfg.variations.roughness.as_ref().unwrap();
        assert_eq!(rough.sigma, 0.5);
        assert_eq!(rough.correlation_length, 0.7);
        let doping = cfg.variations.doping.as_ref().unwrap();
        assert_eq!(doping.relative_sigma, 0.10);
        assert_eq!(doping.correlation_length, 0.5);
        assert_eq!(exp.mc_runs, 10_000);
        match &cfg.quantities {
            QuantitySet::InterfaceCurrent { terminal } => assert_eq!(terminal, "plug1"),
            other => panic!("unexpected quantity set {other:?}"),
        }
        // The two rough interfaces together expose the paper's 32 perturbed nodes.
        let total_nodes: usize = analysis
            .structure()
            .rough_facets
            .iter()
            .map(|f| f.nodes.len())
            .sum();
        assert_eq!(total_nodes, 32);
    }

    #[test]
    fn row_labels_are_distinct() {
        let labels: Vec<&str> = TableOneRow::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }
}
