//! Deterministic fault injection for exercising the pipeline's failure
//! containment on demand.
//!
//! A [`FaultPlan`] names failures to force at stable **sites** deep in the
//! solver stack (a pivot breakdown, a Krylov non-convergence, a NaN-poisoned
//! solution, an ILU rebuild failure, a degenerate mesh config), keyed by the
//! **stage** of the analysis and the **sample index** within that stage. The
//! analysis layer installs a thread-local [`scope`] around each per-sample
//! evaluation; the injection sites merely ask [`armed`] whether to fail.
//! Because the scope is keyed by `(stage, sample_index)` — never by thread
//! identity or timing — an injected run is bit-reproducible at any
//! `VAEM_THREADS` setting.
//!
//! The plan comes from the `VAEM_FAULTS` environment knob (read through the
//! allowlisted [`crate::env`] chokepoint). Grammar — comma-separated
//! entries:
//!
//! ```text
//! VAEM_FAULTS = entry ("," entry)*
//! entry       = site "@" stage [":" index] ["!"]
//! site        = "pivot" | "krylov" | "nan" | "ilu" | "mesh"
//! stage       = "nominal" | "sscm" | "mc"
//! ```
//!
//! `index` defaults to 0 (the only index the `nominal` stage has). A plain
//! entry fires only on the sample's **first** attempt, so the quarantine
//! layer's single deterministic recovery retry succeeds and the fault shows
//! up as a recovered sample; a trailing `!` makes the entry **sticky** — it
//! fires on every attempt, so the retry fails too and the sample is
//! quarantined for good. Example:
//!
//! ```text
//! VAEM_FAULTS="nan@mc:3,pivot@sscm:1!"
//! ```
//! forces a NaN-poisoned solve in Monte-Carlo run 3 (recovered by the retry)
//! and a sticky pivot breakdown in SSCM collocation sample 1 (quarantined).

use crate::env;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// Environment variable holding the fault plan (see the module docs for the
/// grammar). Unset means no injection; a malformed value warns once and is
/// ignored entirely — a typo must not half-inject a plan.
pub const FAULTS_ENV: &str = "VAEM_FAULTS";

/// A named location in the solver stack where a failure can be forced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Direct-LU numeric factorization reports a singular pivot.
    Pivot,
    /// The Krylov attempt of a prepared iterative solve reports
    /// non-convergence before running (exercising the GMRES → direct
    /// rescue chain).
    Krylov,
    /// A successful prepared solve's solution vector is poisoned with NaN
    /// (exercising the non-finite guards downstream).
    Nan,
    /// Building or rebuilding the ILU(0) preconditioner fails.
    Ilu,
    /// The per-sample mesh/structure construction reports a degenerate
    /// configuration.
    Mesh,
}

impl FaultSite {
    /// The stable grammar name of the site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Pivot => "pivot",
            FaultSite::Krylov => "krylov",
            FaultSite::Nan => "nan",
            FaultSite::Ilu => "ilu",
            FaultSite::Mesh => "mesh",
        }
    }

    fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "pivot" => FaultSite::Pivot,
            "krylov" => FaultSite::Krylov,
            "nan" => FaultSite::Nan,
            "ilu" => FaultSite::Ilu,
            "mesh" => FaultSite::Mesh,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which fan-out of the analysis a sample index counts within.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultStage {
    /// The single nominal (unperturbed) evaluation; index is always 0.
    Nominal,
    /// SSCM collocation samples (also the per-sample index of frequency
    /// and adaptive sweeps, which evaluate the same collocation set).
    Sscm,
    /// Monte-Carlo reference runs.
    Mc,
}

impl FaultStage {
    /// The stable grammar name of the stage.
    pub fn name(self) -> &'static str {
        match self {
            FaultStage::Nominal => "nominal",
            FaultStage::Sscm => "sscm",
            FaultStage::Mc => "mc",
        }
    }

    fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "nominal" => FaultStage::Nominal,
            "sscm" => FaultStage::Sscm,
            "mc" => FaultStage::Mc,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed `site@stage:index[!]` entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEntry {
    /// Where in the solver stack the failure is forced.
    pub site: FaultSite,
    /// Which fan-out the index counts within.
    pub stage: FaultStage,
    /// Sample index within the stage.
    pub index: usize,
    /// Sticky entries fire on every attempt (so the recovery retry fails
    /// too); plain entries fire only on attempt 0.
    pub sticky: bool,
}

/// A parsed, immutable fault-injection plan.
///
/// The plan itself is pure data; arming happens through [`scope`], which
/// binds the plan to one `(stage, index, attempt)` evaluation on the
/// current thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// Parses the `VAEM_FAULTS` grammar (see the module docs). Whitespace
    /// around entries and separators is ignored; an empty string (or one
    /// that is only separators) yields an empty plan.
    ///
    /// # Errors
    /// A human-readable description of the first malformed entry.
    // vaem-lint: cold fault-plan parsing, once per process
    // vaem-lint: stage pure function of the plan string
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (body, sticky) = match part.strip_suffix('!') {
                Some(body) => (body.trim_end(), true),
                None => (part, false),
            };
            let Some((site_text, rest)) = body.split_once('@') else {
                return Err(format!(
                    "entry {part:?} is missing '@' (expected site@stage[:index][!])"
                ));
            };
            let site_text = site_text.trim();
            let Some(site) = FaultSite::parse(site_text) else {
                return Err(format!(
                    "unknown fault site {site_text:?} (expected pivot, krylov, nan, ilu or mesh)"
                ));
            };
            let (stage_text, index) = match rest.split_once(':') {
                Some((stage_text, index_text)) => {
                    let index_text = index_text.trim();
                    let Ok(index) = index_text.parse::<usize>() else {
                        return Err(format!(
                            "invalid sample index {index_text:?} in entry {part:?}"
                        ));
                    };
                    (stage_text, index)
                }
                None => (rest, 0),
            };
            let stage_text = stage_text.trim();
            let Some(stage) = FaultStage::parse(stage_text) else {
                return Err(format!(
                    "unknown fault stage {stage_text:?} (expected nominal, sscm or mc)"
                ));
            };
            entries.push(FaultEntry {
                site,
                stage,
                index,
                sticky,
            });
        }
        Ok(Self { entries })
    }

    /// Reads and parses the `VAEM_FAULTS` knob. `None` when the variable is
    /// unset, empty, or malformed — a malformed value warns once (via
    /// [`env::warn_invalid_once`]) and disables injection entirely rather
    /// than half-applying a typo'd plan.
    pub fn from_env() -> Option<Arc<Self>> {
        let value = env::raw(FAULTS_ENV)?;
        match Self::parse(&value) {
            Ok(plan) if plan.entries.is_empty() => None,
            Ok(plan) => Some(Arc::new(plan)),
            Err(reason) => {
                env::warn_invalid_once(
                    FAULTS_ENV,
                    &value,
                    &format!("a fault plan ({reason})"),
                    "fault injection disabled",
                );
                None
            }
        }
    }

    /// The parsed entries, in plan order.
    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    /// Whether the plan would fire `site` for the given evaluation.
    fn fires(&self, site: FaultSite, stage: FaultStage, index: usize, attempt: u32) -> bool {
        self.entries.iter().any(|e| {
            e.site == site && e.stage == stage && e.index == index && (e.sticky || attempt == 0)
        })
    }
}

struct ActiveScope {
    plan: Arc<FaultPlan>,
    stage: FaultStage,
    index: usize,
    attempt: u32,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveScope>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previously active fault scope on drop (scopes
/// nest: an inner evaluation shadows the outer one on the same thread).
pub struct ScopeGuard {
    previous: Option<ActiveScope>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|cell| {
            *cell.borrow_mut() = self.previous.take();
        });
    }
}

/// Arms `plan` for one per-sample evaluation on the current thread: until
/// the returned guard is dropped, [`armed`] answers for
/// `(stage, index, attempt)`. The caller — the analysis fan-out — installs
/// this *inside* the per-sample worker closure, keyed by the sample index,
/// so arming is independent of which thread runs the sample.
pub fn scope(plan: Arc<FaultPlan>, stage: FaultStage, index: usize, attempt: u32) -> ScopeGuard {
    let previous = ACTIVE.with(|cell| {
        cell.borrow_mut().replace(ActiveScope {
            plan,
            stage,
            index,
            attempt,
        })
    });
    ScopeGuard { previous }
}

/// Whether an injection site should fail right now: true exactly when a
/// scope is active on this thread and its plan has a matching entry for the
/// scope's `(stage, index, attempt)`. Always false outside any scope, so
/// production paths pay one thread-local read and a `None` check.
pub fn armed(site: FaultSite) -> bool {
    ACTIVE.with(|cell| {
        cell.borrow()
            .as_ref()
            .is_some_and(|s| s.plan.fires(site, s.stage, s.index, s.attempt))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse("nan@mc:3, pivot@sscm:1!, mesh@nominal").unwrap();
        assert_eq!(
            plan.entries(),
            &[
                FaultEntry {
                    site: FaultSite::Nan,
                    stage: FaultStage::Mc,
                    index: 3,
                    sticky: false,
                },
                FaultEntry {
                    site: FaultSite::Pivot,
                    stage: FaultStage::Sscm,
                    index: 1,
                    sticky: true,
                },
                FaultEntry {
                    site: FaultSite::Mesh,
                    stage: FaultStage::Nominal,
                    index: 0,
                    sticky: false,
                },
            ]
        );
    }

    #[test]
    fn parses_every_site_and_stage() {
        for site in ["pivot", "krylov", "nan", "ilu", "mesh"] {
            for stage in ["nominal", "sscm", "mc"] {
                let text = format!("{site}@{stage}:7!");
                let plan = FaultPlan::parse(&text).unwrap();
                assert_eq!(plan.entries().len(), 1, "{text}");
                assert_eq!(plan.entries()[0].site.name(), site);
                assert_eq!(plan.entries()[0].stage.name(), stage);
                assert_eq!(plan.entries()[0].index, 7);
                assert!(plan.entries()[0].sticky);
            }
        }
    }

    #[test]
    fn empty_and_separator_only_plans_are_empty() {
        assert!(FaultPlan::parse("").unwrap().entries().is_empty());
        assert!(FaultPlan::parse("  , ,, ").unwrap().entries().is_empty());
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in [
            "pivot",          // missing '@'
            "warp@sscm:0",    // unknown site
            "pivot@warm:0",   // unknown stage
            "pivot@sscm:x",   // non-numeric index
            "pivot@sscm:-1",  // negative index
            "pivot@sscm:1.5", // fractional index
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn scope_arms_matching_site_only() {
        let plan = Arc::new(FaultPlan::parse("pivot@sscm:2").unwrap());
        assert!(!armed(FaultSite::Pivot), "no scope → never armed");
        {
            let _guard = scope(plan.clone(), FaultStage::Sscm, 2, 0);
            assert!(armed(FaultSite::Pivot));
            assert!(!armed(FaultSite::Krylov), "site must match");
        }
        assert!(!armed(FaultSite::Pivot), "guard drop restores no-scope");
        let _guard = scope(plan.clone(), FaultStage::Sscm, 3, 0);
        assert!(!armed(FaultSite::Pivot), "index must match");
        drop(_guard);
        let _guard = scope(plan, FaultStage::Mc, 2, 0);
        assert!(!armed(FaultSite::Pivot), "stage must match");
    }

    #[test]
    fn sticky_governs_retry_attempts() {
        let plan = Arc::new(FaultPlan::parse("nan@mc:0, ilu@mc:0!").unwrap());
        let _attempt0 = scope(plan.clone(), FaultStage::Mc, 0, 0);
        assert!(armed(FaultSite::Nan));
        assert!(armed(FaultSite::Ilu));
        drop(_attempt0);
        let _attempt1 = scope(plan, FaultStage::Mc, 0, 1);
        assert!(
            !armed(FaultSite::Nan),
            "plain entry fires only on attempt 0"
        );
        assert!(armed(FaultSite::Ilu), "sticky entry fires on every attempt");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let plan = Arc::new(FaultPlan::parse("mesh@sscm:0").unwrap());
        let _outer = scope(plan.clone(), FaultStage::Sscm, 0, 0);
        assert!(armed(FaultSite::Mesh));
        {
            let _inner = scope(plan.clone(), FaultStage::Mc, 5, 0);
            assert!(!armed(FaultSite::Mesh), "inner scope shadows outer");
        }
        assert!(armed(FaultSite::Mesh), "outer scope restored");
    }
}
