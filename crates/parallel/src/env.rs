//! Central access to the `VAEM_*` environment knobs — the **only** file in
//! the workspace where `std::env::var` is permitted (lint rule D2).
//!
//! Every behavior-changing knob goes through one of the typed readers here,
//! which parse, clamp, and warn **once per variable** on unusable values so
//! a typo degrades to a safe fallback instead of silently mis-configuring a
//! run (or panicking mid-sweep). The full knob catalog lives in the README
//! "Environment knobs" table; the one-time warning keeps noisy harnesses
//! (benches re-reading a knob per iteration) from flooding stderr.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// How an environment value parsed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Parsed<T> {
    /// Variable not set: the caller picks its default.
    Unset,
    /// Set but unusable (garbage, zero, negative, non-finite): the caller
    /// picks a safe fallback, normally after [`warn_invalid_once`].
    Invalid,
    /// A usable value, already clamped.
    Value(T),
}

/// Reads a variable raw. This is the single `std::env::var` chokepoint the
/// D2 lint rule allowlists; everything else must call a typed reader.
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Warns about an unusable value — once per variable name per process, so
/// per-iteration readers cannot flood stderr. `expected` describes the
/// accepted form, `fallback` what the run does instead.
// vaem-lint: cold one-shot warning path, executes at most once per knob
pub fn warn_invalid_once(name: &str, value: &str, expected: &str, fallback: &str) {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = match warned.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if guard.insert(name.to_string()) {
        eprintln!("warning: {name}={value:?} is not {expected}; {fallback}");
    }
}

/// Parses an optional raw value as a positive integer capped at `cap`
/// (pure; the policy half of [`positive_usize`]).
pub fn parse_positive_usize(value: Option<&str>, cap: usize) -> Parsed<usize> {
    let Some(raw) = value else {
        return Parsed::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => Parsed::Invalid,
        Ok(n) => Parsed::Value(n.min(cap)),
    }
}

/// Parses an optional raw value as a positive finite float (pure).
pub fn parse_positive_f64(value: Option<&str>) -> Parsed<f64> {
    let Some(raw) = value else {
        return Parsed::Unset;
    };
    match raw.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Parsed::Value(v),
        _ => Parsed::Invalid,
    }
}

/// A positive-integer knob: the variable's value capped at `cap` when it
/// parses, `default()` when unset, and `invalid_fallback` — after a
/// one-time warning describing `fallback_desc` — when it holds garbage,
/// zero, or a negative number.
///
/// Read on every call (not cached) so tests and harnesses can switch a
/// variable between runs within one process.
pub fn positive_usize(
    name: &str,
    cap: usize,
    default: impl FnOnce() -> usize,
    invalid_fallback: usize,
    fallback_desc: &str,
) -> usize {
    let value = raw(name);
    match parse_positive_usize(value.as_deref(), cap) {
        Parsed::Value(n) => n,
        Parsed::Unset => default(),
        Parsed::Invalid => {
            warn_invalid_once(
                name,
                value.as_deref().unwrap_or_default(),
                "a positive integer",
                fallback_desc,
            );
            invalid_fallback
        }
    }
}

/// A positive-finite-float knob: the variable's value when it parses,
/// `default` otherwise (with a one-time warning when it holds garbage
/// rather than being unset).
pub fn positive_f64(name: &str, default: f64, fallback_desc: &str) -> f64 {
    let value = raw(name);
    match (parse_positive_f64(value.as_deref()), value.as_deref()) {
        (Parsed::Value(v), _) => v,
        (_, None) => default,
        (_, Some(bad)) => {
            warn_invalid_once(name, bad, "a positive finite number", fallback_desc);
            default
        }
    }
}

/// A boolean knob: true exactly when the variable is set to `"1"`.
pub fn flag(name: &str) -> bool {
    raw(name).as_deref() == Some("1")
}

/// An optional positive-integer knob with no warning or clamping beyond the
/// parse itself (unset and garbage are both `None`).
pub fn opt_usize(name: &str) -> Option<usize> {
    raw(name)
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_usize_parsing_rules() {
        use Parsed::*;
        // Unset: fall back to the caller's default.
        assert_eq!(parse_positive_usize(None, 512), Unset);
        // Garbage, zero and negative values are invalid (the knob helpers
        // clamp them to a safe fallback with a one-time warning).
        assert_eq!(parse_positive_usize(Some(""), 512), Invalid);
        assert_eq!(parse_positive_usize(Some("abc"), 512), Invalid);
        assert_eq!(parse_positive_usize(Some("0"), 512), Invalid);
        assert_eq!(parse_positive_usize(Some("-3"), 512), Invalid);
        assert_eq!(parse_positive_usize(Some("2.5"), 512), Invalid);
        assert_eq!(parse_positive_usize(Some("4 threads"), 512), Invalid);
        // Valid values pass through, capped.
        assert_eq!(parse_positive_usize(Some("1"), 512), Value(1));
        assert_eq!(parse_positive_usize(Some(" 8 "), 512), Value(8));
        assert_eq!(parse_positive_usize(Some("99999"), 512), Value(512));
    }

    #[test]
    fn positive_f64_parsing_rules() {
        use Parsed::*;
        assert_eq!(parse_positive_f64(None), Unset);
        assert_eq!(parse_positive_f64(Some("")), Invalid);
        assert_eq!(parse_positive_f64(Some("abc")), Invalid);
        assert_eq!(parse_positive_f64(Some("0")), Invalid);
        assert_eq!(parse_positive_f64(Some("-0.1")), Invalid);
        assert_eq!(parse_positive_f64(Some("inf")), Invalid);
        assert_eq!(parse_positive_f64(Some("NaN")), Invalid);
        assert_eq!(parse_positive_f64(Some("0.05")), Value(0.05));
        assert_eq!(parse_positive_f64(Some(" 1e-3 ")), Value(1e-3));
    }

    #[test]
    fn knob_helpers_apply_policy() {
        // Exercised through the pure halves plus an unset variable (the
        // test harness must not mutate the process environment).
        assert_eq!(
            positive_usize("VAEM_TEST_UNSET_KNOB", 8, || 5, 1, "unused"),
            5
        );
        assert_eq!(positive_f64("VAEM_TEST_UNSET_KNOB", 1.25, "unused"), 1.25);
        assert!(!flag("VAEM_TEST_UNSET_KNOB"));
        assert_eq!(opt_usize("VAEM_TEST_UNSET_KNOB"), None);
    }

    #[test]
    fn warn_once_is_per_variable() {
        // Warning twice for one name must not print twice; this only
        // checks it does not panic or deadlock (stderr is not captured).
        warn_invalid_once("VAEM_TEST_WARN", "x", "a positive integer", "ignored");
        warn_invalid_once("VAEM_TEST_WARN", "y", "a positive integer", "ignored");
    }
}
