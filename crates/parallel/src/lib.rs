//! Std-only parallel fan-out for embarrassingly parallel sample sweeps.
//!
//! The SSCM collocation points and the Monte-Carlo reference runs of the
//! variational analysis are independent deterministic solves; this crate
//! fans them out over [`std::thread::scope`] threads without adding any
//! external dependency.
//!
//! Two properties the analysis layer relies on:
//!
//! * **Determinism** — [`par_map`] assigns item `i` of the input to slot `i`
//!   of the output, and the mapped function receives the item index, so the
//!   result is identical for any thread count (including 1). Randomness must
//!   be derived from the item/index, never from thread identity or timing.
//! * **Bounded threads** — the thread count comes from the `VAEM_THREADS`
//!   environment variable when set (clamped to [1, 512]), otherwise from
//!   [`std::thread::available_parallelism`].
//!
//! Work is distributed through an atomic-index **work-stealing queue**
//! rather than pre-cut contiguous chunks: each worker repeatedly claims the
//! next unclaimed block of indices. Per-item costs in the sweeps are ragged
//! (Newton iteration counts vary with the perturbation), so static chunking
//! serializes behind the unluckiest chunk while the shared queue keeps every
//! worker busy until the input is drained. The claim granularity is
//! auto-tuned (small enough to balance, large enough to amortize the atomic)
//! and can be pinned with the `VAEM_CHUNK` environment variable. Scheduling
//! never affects *results* — only which worker computes an item — because
//! every item still writes its own output slot.

#![warn(missing_docs)]

pub mod env;
pub mod faults;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "VAEM_THREADS";

/// Environment variable pinning the work-stealing claim granularity (number
/// of consecutive items a worker claims per queue access). Unset or invalid
/// values fall back to the auto-tuned size.
pub const CHUNK_ENV: &str = "VAEM_CHUNK";

/// Upper bound on the worker-thread count (guards against typos such as
/// `VAEM_THREADS=40000`).
pub const MAX_THREADS: usize = 512;

/// The configured worker-thread count: `VAEM_THREADS` when set to a positive
/// integer (capped at [`MAX_THREADS`]), the detected hardware parallelism
/// when unset (at least 1), and 1 — with a one-time warning on stderr — when
/// the variable is set to zero, a negative number or garbage.
///
/// Read on every call (not cached) so tests and harnesses can switch the
/// variable between runs within one process.
pub fn thread_count() -> usize {
    env::positive_usize(
        THREADS_ENV,
        MAX_THREADS,
        || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        },
        1,
        "running with 1 worker thread",
    )
}

/// The configured work-stealing claim granularity: `VAEM_CHUNK` when set to
/// a positive integer, otherwise `None` (auto-tune per call; unusable
/// values silently fall back to the auto-tune — the granularity never
/// changes results, only scheduling).
fn chunk_override() -> Option<usize> {
    match env::parse_positive_usize(env::raw(CHUNK_ENV).as_deref(), usize::MAX) {
        env::Parsed::Value(n) => Some(n),
        _ => None,
    }
}

/// Auto-tuned claim granularity: aim for ~4 claims per worker so ragged
/// per-item costs rebalance, without paying one atomic operation per item on
/// huge inputs.
fn auto_chunk(len: usize, threads: usize) -> usize {
    (len / (threads * 4)).max(1)
}

/// A raw output-slot pointer that may cross the scoped-thread boundary.
///
/// Safety contract (upheld by [`steal_indices`]): every index in `0..len`
/// is claimed by exactly one worker through the shared atomic cursor, so no
/// two threads ever write the same slot and the parent does not touch the
/// buffer until all workers have joined.
struct SlotPtr<U>(*mut Option<U>);
// SAFETY: sending the pointer is sound because the slot values are `Send`
// and the buffer outlives the scope that carries the pointer across
// threads (the parent owns it and joins every worker before reading).
unsafe impl<U: Send> Send for SlotPtr<U> {}
// SAFETY: shared access is sound because workers write disjoint slots —
// `steal_indices` hands each index to exactly one claimant — so no slot is
// ever aliased mutably; `&self` itself only exposes the raw pointer.
unsafe impl<U: Send> Sync for SlotPtr<U> {}

/// The single work-stealing engine behind every fan-out in this crate:
/// spawns up to `threads` scoped workers that repeatedly claim the next
/// unclaimed block of `chunk` indices off a shared atomic cursor and invoke
/// `body` once per claimed index. Returns when every index in `0..len` has
/// been processed (a worker panic propagates out of the scope).
///
/// Guarantee the callers' unsafe slot/item writes rely on: each index in
/// `0..len` is passed to **exactly one** `body` invocation — the
/// `fetch_add` hands out disjoint ranges, and the scope joins all workers
/// before returning. Keeping this loop in one place means there is exactly
/// one claiming discipline to audit for both the shared-input and the
/// mutable-input fan-out.
// vaem-lint: hot claiming loop of the fan-out primitives, runs on every worker
fn steal_indices<F>(threads: usize, chunk: usize, len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    // No point spawning workers that could never win a claim.
    let workers = threads.min(len.div_ceil(chunk));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let body = &body;
        let cursor = &cursor;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                for index in start..end {
                    body(index);
                }
            });
        }
    });
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads.
///
/// `f` receives `(index, &item)` and its results are returned in input
/// order; the output is bit-for-bit independent of the thread count as long
/// as `f` itself is a pure function of its arguments. Work is claimed from a
/// shared atomic-index queue (work stealing), so ragged per-item costs —
/// samples whose Newton loops need more iterations than their neighbours' —
/// do not serialize the sweep behind one unlucky contiguous chunk.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit thread count (mainly for tests and for
/// callers that manage their own thread budget). The claim granularity is
/// auto-tuned unless `VAEM_CHUNK` pins it.
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let chunk = chunk_override().unwrap_or_else(|| auto_chunk(items.len(), threads.max(1)));
    par_map_with_chunk(threads, chunk, items, f)
}

/// [`par_map_with`] with an explicit claim granularity, bypassing both the
/// auto-tune and the `VAEM_CHUNK` override — the fully pinned variant used
/// by the scheduler tests (no process-global environment involved).
pub fn par_map_with_chunk<T, U, F>(threads: usize, chunk: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    let slots = SlotPtr(out.as_mut_ptr());
    // Capture the `Sync` wrapper by reference — a disjoint field capture
    // of the raw pointer would sidestep its Send/Sync impls.
    let slots = &slots;
    steal_indices(threads, chunk.max(1), items.len(), |index| {
        // SAFETY: `steal_indices` hands `index` to exactly one invocation,
        // it is in bounds, and the buffer outlives the call. Writing
        // through the pointer drops the old value, which is always the
        // `None` the slot was initialized with.
        unsafe { *slots.0.add(index) = Some(f(index, &items[index])) };
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// A raw input-slot pointer for the mutable fan-out.
///
/// Safety contract (upheld by [`par_map_mut_with_chunk`]): every index in
/// `0..len` is claimed by exactly one worker, so no two threads ever hold a
/// mutable reference to the same element, and the parent does not touch the
/// slice until all workers have joined.
struct ItemPtr<T>(*mut T);
// SAFETY: sending the pointer is sound because the items are `Send` and
// the parent-owned slice outlives the scope carrying the pointer.
unsafe impl<T: Send> Send for ItemPtr<T> {}
// SAFETY: shared access is sound because each index — and therefore each
// `&mut` item projected from the pointer — is claimed by exactly one
// worker, so no element is aliased; `&self` only exposes the raw pointer.
unsafe impl<T: Send> Sync for ItemPtr<T> {}

/// [`par_map`] over **mutable** items: `f` receives `(index, &mut item)` and
/// may update the item in place while producing an output.
///
/// This is the fan-out primitive of the adaptive frequency sweeps: each
/// collocation sample owns a persistent state (perturbed structure, cached
/// DC operating point) that every refinement wave reuses and may extend.
/// Item `i` still writes output slot `i` and is claimed by exactly one
/// worker per call, so the results — and the mutated states — are
/// bit-for-bit independent of the thread count as long as `f` is a pure
/// function of `(index, item)`.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map_mut<T, U, F>(items: &mut [T], f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let threads = thread_count();
    let chunk = chunk_override().unwrap_or_else(|| auto_chunk(items.len(), threads.max(1)));
    par_map_mut_with_chunk(threads, chunk, items, f)
}

/// [`par_map_mut`] with explicit thread count and claim granularity (the
/// fully pinned variant used by the scheduler tests).
pub fn par_map_mut_with_chunk<T, U, F>(
    threads: usize,
    chunk: usize,
    items: &mut [T],
    f: F,
) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let len = items.len();
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(len, || None);
    let slots = SlotPtr(out.as_mut_ptr());
    let inputs = ItemPtr(items.as_mut_ptr());
    // Capture the `Sync` wrappers by reference — disjoint field captures
    // of the raw pointers would sidestep their Send/Sync impls.
    let (slots, inputs) = (&slots, &inputs);
    steal_indices(threads, chunk.max(1), len, |index| {
        // SAFETY: `steal_indices` hands `index` to exactly one invocation
        // and it is in bounds, so the item reference is exclusive and the
        // output slot is written exactly once (dropping the `None` it was
        // initialized with).
        unsafe {
            let item = &mut *inputs.0.add(index);
            *slots.0.add(index) = Some(f(index, item));
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Fans the indices `0..len` out over up to `threads` workers, each owning a
/// private scratch state created by `init` — the primitive behind the
/// level-scheduled parallel numeric factorization, where every worker needs
/// its own dense scatter vector but the columns of one elimination level are
/// otherwise independent.
///
/// `body` receives `(&mut state, index)`; every index is claimed by exactly
/// one worker through the same atomic-cursor discipline as [`par_map`], and
/// the call returns only after all workers have joined — so writes made by
/// `body` happen-before everything after the call. With `threads <= 1` (or a
/// single index) no thread is spawned and one state processes all indices in
/// ascending order; callers whose `body` is a pure function of `index` and
/// of data fixed before the call therefore get results that are independent
/// of the thread count, since per-index outputs never depend on which
/// worker's scratch computed them.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_for_with<S, I, F>(threads: usize, chunk: usize, len: usize, init: I, body: F)
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(len.max(1));
    if threads <= 1 || len <= 1 {
        let mut state = init();
        for index in 0..len {
            body(&mut state, index);
        }
        return;
    }
    let chunk = chunk.max(1);
    let workers = threads.min(len.div_ceil(chunk));
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (body, init, cursor) = (&body, &init, &cursor);
        for _ in 0..workers {
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let end = (start + chunk).min(len);
                    for index in start..end {
                        body(&mut state, index);
                    }
                }
            });
        }
    });
}

/// Runs `f` for every index in `0..count` (no input slice) and collects the
/// results in index order — convenience wrapper for seed-indexed sweeps like
/// the Monte-Carlo reference.
pub fn par_map_indices<U, F>(count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_with_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &v| (i as u64) * 1000 + v);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let items: Vec<f64> = (0..53).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * 1e6) + i as f64;
        let serial = par_map_with(1, &items, f);
        for threads in [2, 3, 4, 7, 64] {
            let parallel = par_map_with(threads, &items, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(par_map(&[41u32], |_, &v| v + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(100, &items, |_, &v| v * 2), vec![2, 4, 6]);
    }

    /// Adversarial cost skew: a handful of items are orders of magnitude
    /// more expensive than the rest. The work-stealing queue must neither
    /// lose nor reorder slots for any (thread count, claim granularity)
    /// combination.
    #[test]
    fn skewed_item_costs_keep_results_deterministic() {
        let items: Vec<u64> = (0..61).collect();
        let f = |i: usize, &v: &u64| {
            // Items 0, 20 and 40 spin ~1000x longer than the others, the
            // worst case for contiguous chunking.
            let spins = if v % 20 == 0 { 200_000 } else { 200 };
            let mut acc = v;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            acc
        };
        let serial = par_map_with_chunk(1, 1, &items, f);
        for threads in [2, 3, 4, 8] {
            for chunk in [1, 2, 7, 64] {
                let stolen = par_map_with_chunk(threads, chunk, &items, f);
                assert_eq!(serial, stolen, "threads = {threads}, chunk = {chunk}");
            }
        }
    }

    #[test]
    fn every_index_is_claimed_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..997).collect();
        let hits: Vec<AtomicUsize> = (0..items.len()).map(|_| AtomicUsize::new(0)).collect();
        let out = par_map_with_chunk(7, 3, &items, |i, &v| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            v * 2
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn chunk_env_parsing_rules() {
        // The chunk override shares the positive-integer policy of the
        // central knob module: unset or unusable asks for auto-tuning.
        use env::{parse_positive_usize, Parsed};
        for bad in [Some(""), Some("0"), Some("-4"), Some("abc"), None] {
            assert_ne!(parse_positive_usize(bad, usize::MAX), Parsed::Value(0));
            assert!(!matches!(
                parse_positive_usize(bad, usize::MAX),
                Parsed::Value(_)
            ));
        }
        assert_eq!(
            parse_positive_usize(Some("1"), usize::MAX),
            Parsed::Value(1)
        );
        assert_eq!(
            parse_positive_usize(Some(" 16 "), usize::MAX),
            Parsed::Value(16)
        );
    }

    #[test]
    fn auto_chunk_balances_without_degenerating() {
        // Small ragged inputs claim item-by-item; large inputs amortize the
        // atomic over bigger blocks; the result is never zero.
        assert_eq!(auto_chunk(10, 4), 1);
        assert_eq!(auto_chunk(0, 1), 1);
        assert_eq!(auto_chunk(1024, 4), 64);
        assert!(auto_chunk(usize::MAX / 2, 2) >= 1);
    }

    #[test]
    fn mutable_fan_out_updates_every_item_and_keeps_slot_order() {
        // Persistent per-item state (the adaptive-sweep pattern): each call
        // appends to its item's history and returns a value derived from
        // the accumulated state.
        let mut states: Vec<Vec<u64>> = (0..37).map(|i| vec![i as u64]).collect();
        let serial_expect: Vec<u64> = (0..37u64).map(|i| i + 100).collect();
        for (threads, chunk) in [(1, 1), (3, 2), (8, 1), (4, 64)] {
            let mut fresh = states.clone();
            let out = par_map_mut_with_chunk(threads, chunk, &mut fresh, |i, state| {
                state.push(state.last().unwrap() + 100);
                *state.last().unwrap() + i as u64 - state[0]
            });
            assert_eq!(out, serial_expect, "threads {threads}, chunk {chunk}");
            for (i, state) in fresh.iter().enumerate() {
                assert_eq!(state, &[i as u64, i as u64 + 100]);
            }
        }
        // Repeated waves over the same mutable states accumulate.
        let _ = par_map_mut_with_chunk(4, 1, &mut states, |_, s| s.push(1));
        let _ = par_map_mut_with_chunk(2, 3, &mut states, |_, s| s.push(2));
        assert!(states.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn mutable_fan_out_handles_empty_and_single_inputs() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, |_, v| *v).is_empty());
        let mut one = [41u32];
        assert_eq!(
            par_map_mut(&mut one, |_, v| {
                *v += 1;
                *v
            }),
            vec![42]
        );
        assert_eq!(one[0], 42);
    }

    #[test]
    fn per_worker_state_fan_out_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let len = 503;
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        let states_created = AtomicUsize::new(0);
        for (threads, chunk) in [(1, 1), (3, 2), (8, 1), (4, 64)] {
            for h in &hits {
                h.store(0, Ordering::Relaxed);
            }
            states_created.store(0, Ordering::Relaxed);
            par_for_with(
                threads,
                chunk,
                len,
                || {
                    states_created.fetch_add(1, Ordering::Relaxed);
                    vec![0u8; 16]
                },
                |scratch, index| {
                    scratch[index % 16] ^= 1;
                    hits[index].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads {threads}, chunk {chunk}"
            );
            let created = states_created.load(Ordering::Relaxed);
            assert!(
                (1..=threads).contains(&created),
                "threads {threads}: {created} states"
            );
        }
    }

    #[test]
    fn per_worker_state_fan_out_handles_empty_and_serial_inputs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let touched = AtomicBool::new(false);
        par_for_with(4, 1, 0, || (), |_, _| unreachable!("no indices"));
        par_for_with(
            1,
            1,
            3,
            || touched.store(true, Ordering::Relaxed),
            |_, _| {},
        );
        assert!(
            touched.load(Ordering::Relaxed),
            "serial path still creates its one state"
        );
    }

    #[test]
    fn index_sweep_matches_slice_sweep() {
        let by_index = par_map_indices(10, |i| i * i);
        let squares: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(by_index, squares);
    }

    #[test]
    fn env_parsing_rules() {
        // The thread-count policy (unset → hardware, garbage/zero → clamp
        // to 1 with a warning, valid → capped) now lives in the central
        // knob module; this pins the parse half against MAX_THREADS so no
        // test has to mutate the process-wide environment under the
        // concurrent harness.
        use env::{parse_positive_usize, Parsed};
        assert_eq!(parse_positive_usize(None, MAX_THREADS), Parsed::Unset);
        for bad in ["", "abc", "0", "-3", "2.5", "4 threads"] {
            assert_eq!(
                parse_positive_usize(Some(bad), MAX_THREADS),
                Parsed::Invalid,
                "VAEM_THREADS={bad}"
            );
        }
        assert_eq!(
            parse_positive_usize(Some(" 8 "), MAX_THREADS),
            Parsed::Value(8)
        );
        assert_eq!(
            parse_positive_usize(Some("99999"), MAX_THREADS),
            Parsed::Value(MAX_THREADS)
        );
        // The live reader never yields fewer than one worker.
        assert!(thread_count() >= 1);
    }

    #[test]
    fn errors_can_be_collected_deterministically() {
        let items: Vec<i32> = (0..20).collect();
        let out: Result<Vec<i32>, String> = par_map_with(4, &items, |_, &v| {
            if v == 13 {
                Err(format!("bad item {v}"))
            } else {
                Ok(v)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(out.unwrap_err(), "bad item 13");
    }
}
