//! Std-only parallel fan-out for embarrassingly parallel sample sweeps.
//!
//! The SSCM collocation points and the Monte-Carlo reference runs of the
//! variational analysis are independent deterministic solves; this crate
//! fans them out over [`std::thread::scope`] threads without adding any
//! external dependency.
//!
//! Two properties the analysis layer relies on:
//!
//! * **Determinism** — [`par_map`] assigns item `i` of the input to slot `i`
//!   of the output, and the mapped function receives the item index, so the
//!   result is identical for any thread count (including 1). Randomness must
//!   be derived from the item/index, never from thread identity or timing.
//! * **Bounded threads** — the thread count comes from the `VAEM_THREADS`
//!   environment variable when set (clamped to [1, 512]), otherwise from
//!   [`std::thread::available_parallelism`].

#![warn(missing_docs)]

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "VAEM_THREADS";

/// Upper bound on the worker-thread count (guards against typos such as
/// `VAEM_THREADS=40000`).
pub const MAX_THREADS: usize = 512;

/// How a `VAEM_THREADS`-style value parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadSetting {
    /// Variable not set: use the detected hardware parallelism.
    Unset,
    /// Set but unusable (garbage, zero or negative): clamp to 1 worker and
    /// warn, so a typo degrades to a serial run instead of silently
    /// mis-sizing the pool.
    Invalid,
    /// A positive worker count, capped at [`MAX_THREADS`].
    Count(usize),
}

/// Parses a `VAEM_THREADS`-style value.
fn parse_threads(value: Option<&str>) -> ThreadSetting {
    let Some(raw) = value else {
        return ThreadSetting::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => ThreadSetting::Invalid,
        Ok(n) => ThreadSetting::Count(n.min(MAX_THREADS)),
    }
}

/// The configured worker-thread count: `VAEM_THREADS` when set to a positive
/// integer (capped at [`MAX_THREADS`]), the detected hardware parallelism
/// when unset (at least 1), and 1 — with a one-time warning on stderr — when
/// the variable is set to zero, a negative number or garbage.
///
/// Read on every call (not cached) so tests and harnesses can switch the
/// variable between runs within one process.
pub fn thread_count() -> usize {
    let value = std::env::var(THREADS_ENV).ok();
    resolve_threads(parse_threads(value.as_deref()), value.as_deref())
}

/// Maps a parsed setting to the live worker count, warning (once per
/// process) about unusable values before clamping them to one worker.
fn resolve_threads(setting: ThreadSetting, raw: Option<&str>) -> usize {
    match setting {
        ThreadSetting::Count(n) => n,
        ThreadSetting::Unset => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ThreadSetting::Invalid => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: {THREADS_ENV}={:?} is not a positive integer; \
                     running with 1 worker thread",
                    raw.unwrap_or_default()
                );
            });
            1
        }
    }
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads.
///
/// `f` receives `(index, &item)` and its results are returned in input
/// order; the output is bit-for-bit independent of the thread count as long
/// as `f` itself is a pure function of its arguments. Work is split into
/// contiguous chunks, which fits the sample sweeps (every item costs roughly
/// the same deterministic solve).
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit thread count (mainly for tests and for
/// callers that manage their own thread budget).
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let base = ci * chunk;
            scope.spawn(move || {
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Runs `f` for every index in `0..count` (no input slice) and collects the
/// results in index order — convenience wrapper for seed-indexed sweeps like
/// the Monte-Carlo reference.
pub fn par_map_indices<U, F>(count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_with_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &v| (i as u64) * 1000 + v);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let items: Vec<f64> = (0..53).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * 1e6) + i as f64;
        let serial = par_map_with(1, &items, f);
        for threads in [2, 3, 4, 7, 64] {
            let parallel = par_map_with(threads, &items, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(par_map(&[41u32], |_, &v| v + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(100, &items, |_, &v| v * 2), vec![2, 4, 6]);
    }

    #[test]
    fn index_sweep_matches_slice_sweep() {
        let by_index = par_map_indices(10, |i| i * i);
        let squares: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(by_index, squares);
    }

    #[test]
    fn env_parsing_rules() {
        // Unset: fall back to the hardware parallelism.
        assert_eq!(parse_threads(None), ThreadSetting::Unset);
        // Garbage, zero and negative values clamp to one worker (with a
        // warning) instead of panicking or silently mis-sizing the pool.
        assert_eq!(parse_threads(Some("")), ThreadSetting::Invalid);
        assert_eq!(parse_threads(Some("abc")), ThreadSetting::Invalid);
        assert_eq!(parse_threads(Some("0")), ThreadSetting::Invalid);
        assert_eq!(parse_threads(Some("-3")), ThreadSetting::Invalid);
        assert_eq!(parse_threads(Some("2.5")), ThreadSetting::Invalid);
        assert_eq!(parse_threads(Some("4 threads")), ThreadSetting::Invalid);
        // Valid values pass through, capped at MAX_THREADS.
        assert_eq!(parse_threads(Some("1")), ThreadSetting::Count(1));
        assert_eq!(parse_threads(Some("4")), ThreadSetting::Count(4));
        assert_eq!(parse_threads(Some(" 8 ")), ThreadSetting::Count(8));
        assert_eq!(
            parse_threads(Some("99999")),
            ThreadSetting::Count(MAX_THREADS)
        );
    }

    #[test]
    fn resolution_clamps_invalid_settings_to_one_worker() {
        // Tested through `resolve_threads` (the pure half of
        // `thread_count`) so no test in this binary has to mutate the
        // process-wide environment variable under the concurrent harness.
        for bad in ["0", "-2", "garbage", "1e3"] {
            assert_eq!(
                resolve_threads(parse_threads(Some(bad)), Some(bad)),
                1,
                "VAEM_THREADS={bad}"
            );
        }
        assert_eq!(resolve_threads(ThreadSetting::Count(3), Some("3")), 3);
        assert!(resolve_threads(ThreadSetting::Unset, None) >= 1);
    }

    #[test]
    fn errors_can_be_collected_deterministically() {
        let items: Vec<i32> = (0..20).collect();
        let out: Result<Vec<i32>, String> = par_map_with(4, &items, |_, &v| {
            if v == 13 {
                Err(format!("bad item {v}"))
            } else {
                Ok(v)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(out.unwrap_err(), "bad item 13");
    }
}
