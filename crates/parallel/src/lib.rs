//! Std-only parallel fan-out for embarrassingly parallel sample sweeps.
//!
//! The SSCM collocation points and the Monte-Carlo reference runs of the
//! variational analysis are independent deterministic solves; this crate
//! fans them out over [`std::thread::scope`] threads without adding any
//! external dependency.
//!
//! Two properties the analysis layer relies on:
//!
//! * **Determinism** — [`par_map`] assigns item `i` of the input to slot `i`
//!   of the output, and the mapped function receives the item index, so the
//!   result is identical for any thread count (including 1). Randomness must
//!   be derived from the item/index, never from thread identity or timing.
//! * **Bounded threads** — the thread count comes from the `VAEM_THREADS`
//!   environment variable when set (clamped to [1, 512]), otherwise from
//!   [`std::thread::available_parallelism`].

#![warn(missing_docs)]

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "VAEM_THREADS";

/// Upper bound on the worker-thread count (guards against typos such as
/// `VAEM_THREADS=40000`).
pub const MAX_THREADS: usize = 512;

/// Parses a `VAEM_THREADS`-style value; `None` for unset/invalid/zero.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .map(|n| n.min(MAX_THREADS))
}

/// The configured worker-thread count: `VAEM_THREADS` when set to a positive
/// integer, otherwise the detected hardware parallelism (at least 1).
///
/// Read on every call (not cached) so tests and harnesses can switch the
/// variable between runs within one process.
pub fn thread_count() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Maps `f` over `items` on up to [`thread_count`] scoped threads.
///
/// `f` receives `(index, &item)` and its results are returned in input
/// order; the output is bit-for-bit independent of the thread count as long
/// as `f` itself is a pure function of its arguments. Work is split into
/// contiguous chunks, which fits the sample sweeps (every item costs roughly
/// the same deterministic solve).
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit thread count (mainly for tests and for
/// callers that manage their own thread budget).
pub fn par_map_with<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let f = &f;
        for (ci, (in_chunk, out_chunk)) in
            items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let base = ci * chunk;
            scope.spawn(move || {
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every slot is filled by exactly one worker"))
        .collect()
}

/// Runs `f` for every index in `0..count` (no input slice) and collects the
/// results in index order — convenience wrapper for seed-indexed sweeps like
/// the Monte-Carlo reference.
pub fn par_map_indices<U, F>(count: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..count).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_with_indices() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |i, &v| (i as u64) * 1000 + v);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(o, (i as u64) * 1000 + i as u64);
        }
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        let items: Vec<f64> = (0..53).map(|i| i as f64 * 0.37).collect();
        let f = |i: usize, x: &f64| (x.sin() * 1e6) + i as f64;
        let serial = par_map_with(1, &items, f);
        for threads in [2, 3, 4, 7, 64] {
            let parallel = par_map_with(threads, &items, f);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(par_map(&[41u32], |_, &v| v + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map_with(100, &items, |_, &v| v * 2), vec![2, 4, 6]);
    }

    #[test]
    fn index_sweep_matches_slice_sweep() {
        let by_index = par_map_indices(10, |i| i * i);
        let squares: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(by_index, squares);
    }

    #[test]
    fn env_parsing_rules() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_threads(Some("99999")), Some(MAX_THREADS));
    }

    #[test]
    fn errors_can_be_collected_deterministically() {
        let items: Vec<i32> = (0..20).collect();
        let out: Result<Vec<i32>, String> = par_map_with(4, &items, |_, &v| {
            if v == 13 {
                Err(format!("bad item {v}"))
            } else {
                Ok(v)
            }
        })
        .into_iter()
        .collect();
        assert_eq!(out.unwrap_err(), "bad item 13");
    }
}
