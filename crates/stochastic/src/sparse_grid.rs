//! Sparse collocation point sets.
//!
//! The paper reports that for `d` independent variables the sparse-grid SSCM
//! requires `2d² + 3d + 1` deterministic solves (1035 for d = 22 in Example A
//! and 2415 for d = 34 in Example B). The grid built here reproduces exactly
//! that count: one centre point, five axial points per dimension (the level-2
//! and level-3 Gauss–Hermite abscissae) and the four diagonal combinations
//! `(±√3, ±√3)` for every pair of dimensions — enough to resolve every
//! second-order chaos coefficient, including the cross terms.

/// Collocation point count used by the paper for `d` variables.
pub fn paper_point_count(d: usize) -> usize {
    2 * d * d + 3 * d + 1
}

/// A sparse collocation grid in `d` standard-normal dimensions.
///
/// # Example
/// ```
/// use vaem_stochastic::{CollocationGrid, paper_point_count};
/// let grid = CollocationGrid::level2(22);
/// assert_eq!(grid.len(), paper_point_count(22)); // 1035 runs, as in the paper
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CollocationGrid {
    dim: usize,
    points: Vec<Vec<f64>>,
}

impl CollocationGrid {
    /// Builds the level-2 sparse grid for `dim` variables.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn level2(dim: usize) -> Self {
        assert!(dim > 0, "collocation grid needs at least one dimension");
        let sqrt3 = 3.0_f64.sqrt();
        // Level-3 Gauss–Hermite abscissa (√6) complements ±1 and ±√3 so that
        // pure quadratic and quartic directions are well resolved.
        let sqrt6 = 6.0_f64.sqrt();
        let axial = [-sqrt3, -1.0, 1.0, sqrt3, sqrt6];

        let mut points = Vec::with_capacity(paper_point_count(dim));
        // Centre.
        points.push(vec![0.0; dim]);
        // Axial points: 5 per dimension.
        for d in 0..dim {
            for &v in &axial {
                let mut p = vec![0.0; dim];
                p[d] = v;
                points.push(p);
            }
        }
        // Pairwise diagonal points: 4 per unordered pair.
        for a in 0..dim {
            for b in (a + 1)..dim {
                for &sa in &[-sqrt3, sqrt3] {
                    for &sb in &[-sqrt3, sqrt3] {
                        let mut p = vec![0.0; dim];
                        p[a] = sa;
                        p[b] = sb;
                        points.push(p);
                    }
                }
            }
        }
        Self { dim, points }
    }

    /// Number of random dimensions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of collocation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the grid has no points (never happens).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The collocation points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn point_count_matches_paper_formula() {
        for d in [1, 2, 3, 5, 10, 22, 34] {
            let grid = CollocationGrid::level2(d);
            assert_eq!(grid.len(), paper_point_count(d), "d = {d}");
        }
        // The two counts quoted in the paper.
        assert_eq!(paper_point_count(22), 1035);
        assert_eq!(paper_point_count(34), 2415);
    }

    #[test]
    fn points_are_unique() {
        let grid = CollocationGrid::level2(6);
        let set: BTreeSet<String> = grid
            .points()
            .iter()
            .map(|p| {
                p.iter()
                    .map(|v| format!("{v:.9}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert_eq!(set.len(), grid.len());
    }

    #[test]
    fn points_touch_at_most_two_dimensions() {
        let grid = CollocationGrid::level2(5);
        for p in grid.points() {
            let active = p.iter().filter(|v| v.abs() > 0.0).count();
            assert!(active <= 2, "point {p:?} has too many active dimensions");
        }
    }

    #[test]
    fn first_point_is_the_origin() {
        let grid = CollocationGrid::level2(4);
        assert!(grid.points()[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dimensions_panics() {
        let _ = CollocationGrid::level2(0);
    }
}
