//! Summary statistics and SSCM-vs-MC comparison helpers.

use vaem_numeric::stats::relative_error;

/// Mean and standard deviation of one output quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Mean value.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
}

impl SummaryStats {
    /// Creates a summary.
    pub fn new(mean: f64, std: f64) -> Self {
        Self { mean, std }
    }
}

/// Comparison of an SSCM estimate against a Monte-Carlo reference, mirroring
/// the error metric the paper quotes ("errors on mean value and standard
/// deviation are both less than 1 %").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatComparison {
    /// SSCM estimate.
    pub sscm: SummaryStats,
    /// Monte-Carlo reference.
    pub monte_carlo: SummaryStats,
    /// Relative error of the mean.
    pub mean_error: f64,
    /// Relative error of the standard deviation.
    pub std_error: f64,
}

impl StatComparison {
    /// Returns `true` when both relative errors are below `threshold`.
    pub fn within(&self, threshold: f64) -> bool {
        self.mean_error <= threshold && self.std_error <= threshold
    }
}

/// Compares an SSCM estimate against a Monte-Carlo reference.
///
/// `floor` guards the relative error against (near-)zero references; pass a
/// magnitude that is negligible for the quantity at hand.
pub fn compare(sscm: SummaryStats, monte_carlo: SummaryStats, floor: f64) -> StatComparison {
    StatComparison {
        sscm,
        monte_carlo,
        mean_error: relative_error(sscm.mean, monte_carlo.mean, floor),
        std_error: relative_error(sscm.std, monte_carlo.std, floor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_computes_relative_errors() {
        let c = compare(
            SummaryStats::new(1.01, 0.099),
            SummaryStats::new(1.0, 0.1),
            1e-30,
        );
        assert!((c.mean_error - 0.01).abs() < 1e-12);
        assert!((c.std_error - 0.01).abs() < 1e-12);
        assert!(c.within(0.011));
        assert!(!c.within(0.005));
    }

    #[test]
    fn floor_prevents_division_blowup() {
        let c = compare(
            SummaryStats::new(1e-9, 0.0),
            SummaryStats::new(0.0, 0.0),
            1e-6,
        );
        assert!(c.mean_error < 1e-2);
        assert_eq!(c.std_error, 0.0);
    }
}
