//! The sparse stochastic collocation driver (SSCM).

use crate::{CollocationGrid, HermiteBasis, PolynomialChaos};
use vaem_numeric::NumericError;

/// SSCM driver: owns the collocation grid and fits one [`PolynomialChaos`]
/// per output quantity from the deterministic solver runs.
///
/// The intended workflow mirrors the paper:
/// 1. reduce the correlated variations to `d` independent factors
///    (PFA / wPFA),
/// 2. run the deterministic coupled solver once per collocation point
///    ([`SparseCollocation::points`], `2d² + 3d + 1` runs),
/// 3. fit the quadratic chaos ([`SparseCollocation::fit`]) and read off the
///    statistics.
///
/// # Example
/// ```
/// use vaem_stochastic::SparseCollocation;
/// let sscm = SparseCollocation::new(3);
/// // Pretend the "solver" returns two outputs per run.
/// let runs: Vec<Vec<f64>> = sscm
///     .points()
///     .iter()
///     .map(|z| vec![z[0] + z[1], 1.0 + z[2] * z[2]])
///     .collect();
/// let pces = sscm.fit(&runs)?;
/// assert_eq!(pces.len(), 2);
/// assert!((pces[0].variance() - 2.0).abs() < 1e-9);
/// assert!((pces[1].mean() - 2.0).abs() < 1e-9);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SparseCollocation {
    grid: CollocationGrid,
    order: u8,
}

impl SparseCollocation {
    /// Creates the driver for `dim` reduced variables with the paper's
    /// second-order chaos.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            grid: CollocationGrid::level2(dim),
            order: 2,
        }
    }

    /// Number of reduced random variables.
    pub fn dim(&self) -> usize {
        self.grid.dim()
    }

    /// Number of deterministic solver runs required.
    pub fn run_count(&self) -> usize {
        self.grid.len()
    }

    /// The collocation points (in the reduced standard-normal space) at which
    /// the deterministic solver must be evaluated.
    pub fn points(&self) -> &[Vec<f64>] {
        self.grid.points()
    }

    /// Fits one polynomial chaos per output quantity.
    ///
    /// `outputs[i]` holds the output vector of the solver run at
    /// `points()[i]`; every run must produce the same number of outputs.
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] when the number of runs does not
    ///   match the number of points or the runs have inconsistent lengths.
    /// * Propagates regression failures.
    pub fn fit(&self, outputs: &[Vec<f64>]) -> Result<Vec<PolynomialChaos>, NumericError> {
        if outputs.len() != self.grid.len() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "expected {} solver runs, got {}",
                    self.grid.len(),
                    outputs.len()
                ),
            });
        }
        let n_out = outputs.first().map(|o| o.len()).unwrap_or(0);
        if outputs.iter().any(|o| o.len() != n_out) {
            return Err(NumericError::DimensionMismatch {
                detail: "solver runs returned inconsistent output counts".to_string(),
            });
        }
        let mut models = Vec::with_capacity(n_out);
        for q in 0..n_out {
            let values: Vec<f64> = outputs.iter().map(|o| o[q]).collect();
            let basis = HermiteBasis::new(self.dim(), self.order);
            models.push(PolynomialChaos::fit(basis, self.grid.points(), &values)?);
        }
        Ok(models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_point_count;

    #[test]
    fn run_count_matches_paper_formula() {
        let sscm = SparseCollocation::new(22);
        assert_eq!(sscm.run_count(), paper_point_count(22));
        assert_eq!(sscm.run_count(), 1035);
    }

    #[test]
    fn multi_output_fit_recovers_each_quantity() {
        let sscm = SparseCollocation::new(4);
        let runs: Vec<Vec<f64>> = sscm
            .points()
            .iter()
            .map(|z| vec![1.0 + z[0], z[1] * z[2], 2.0 - 0.5 * z[3] * z[3]])
            .collect();
        let pces = sscm.fit(&runs).unwrap();
        assert_eq!(pces.len(), 3);
        assert!((pces[0].mean() - 1.0).abs() < 1e-10);
        assert!((pces[0].variance() - 1.0).abs() < 1e-9);
        assert!(pces[1].mean().abs() < 1e-10);
        assert!((pces[1].variance() - 1.0).abs() < 1e-9);
        assert!((pces[2].mean() - 1.5).abs() < 1e-10);
        assert!((pces[2].variance() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mismatched_run_count_is_rejected() {
        let sscm = SparseCollocation::new(2);
        let runs = vec![vec![1.0]; 3];
        assert!(sscm.fit(&runs).is_err());
    }

    #[test]
    fn inconsistent_output_lengths_are_rejected() {
        let sscm = SparseCollocation::new(2);
        let mut runs: Vec<Vec<f64>> = sscm.points().iter().map(|_| vec![1.0, 2.0]).collect();
        runs[3] = vec![1.0];
        assert!(sscm.fit(&runs).is_err());
    }
}
