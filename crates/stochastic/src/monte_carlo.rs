//! Monte-Carlo reference driver.

use crate::SummaryStats;
use rand::Rng;
use vaem_numeric::stats::RunningStats;

/// Result of a Monte-Carlo campaign over a multi-output model.
#[derive(Debug, Clone)]
pub struct MonteCarloOutcome {
    /// Streaming statistics per output quantity.
    pub stats: Vec<RunningStats>,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl MonteCarloOutcome {
    /// Mean/std summary of output `q`.
    pub fn summary(&self, q: usize) -> SummaryStats {
        SummaryStats {
            mean: self.stats[q].mean(),
            std: self.stats[q].sample_std(),
        }
    }

    /// Number of output quantities.
    pub fn output_count(&self) -> usize {
        self.stats.len()
    }
}

/// Plain Monte-Carlo sampler used as the accuracy/cost reference for SSCM
/// (the paper uses a 10 000-run campaign).
///
/// # Example
/// ```
/// use rand::SeedableRng;
/// use vaem_stochastic::MonteCarlo;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mc = MonteCarlo::new(5000);
/// // Model: y = 3 + 2·u where u ~ N(0, 1) supplied by the caller.
/// let outcome = mc.run(&mut rng, |rng| {
///     let u: f64 = vaem_variation_free_normal(rng);
///     vec![3.0 + 2.0 * u]
/// });
/// let s = outcome.summary(0);
/// assert!((s.mean - 3.0).abs() < 0.1);
/// assert!((s.std - 2.0).abs() < 0.1);
///
/// // Small helper for the doctest (Box–Muller).
/// fn vaem_variation_free_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
///     let u1: f64 = 1.0 - rng.gen::<f64>();
///     let u2: f64 = rng.gen::<f64>();
///     (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    samples: usize,
}

impl MonteCarlo {
    /// Creates a driver that draws `samples` model evaluations.
    ///
    /// # Panics
    /// Panics if `samples == 0`.
    pub fn new(samples: usize) -> Self {
        assert!(samples > 0, "Monte Carlo needs at least one sample");
        Self { samples }
    }

    /// Number of samples the campaign will draw.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Runs the campaign: `model` is called once per sample with the RNG and
    /// must return the output vector (a consistent length across calls).
    ///
    /// # Panics
    /// Panics if the model returns inconsistent output lengths.
    pub fn run<R, F>(&self, rng: &mut R, mut model: F) -> MonteCarloOutcome
    where
        R: Rng + ?Sized,
        F: FnMut(&mut R) -> Vec<f64>,
    {
        let mut stats: Vec<RunningStats> = Vec::new();
        for s in 0..self.samples {
            let outputs = model(rng);
            if s == 0 {
                stats = vec![RunningStats::new(); outputs.len()];
            }
            assert_eq!(
                outputs.len(),
                stats.len(),
                "model returned {} outputs on sample {s}, expected {}",
                outputs.len(),
                stats.len()
            );
            for (acc, v) in stats.iter_mut().zip(outputs.iter()) {
                acc.push(*v);
            }
        }
        MonteCarloOutcome {
            stats,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn recovers_known_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(11);
        let mc = MonteCarlo::new(40_000);
        let outcome = mc.run(&mut rng, |rng| {
            let z = normal(rng);
            vec![1.0 + 0.5 * z, z * z]
        });
        let s0 = outcome.summary(0);
        let s1 = outcome.summary(1);
        assert!((s0.mean - 1.0).abs() < 0.02);
        assert!((s0.std - 0.5).abs() < 0.02);
        assert!((s1.mean - 1.0).abs() < 0.05);
        // Var(z²) = 2 for standard normal.
        assert!((s1.std - 2.0_f64.sqrt()).abs() < 0.06);
        assert_eq!(outcome.samples, 40_000);
        assert_eq!(outcome.output_count(), 2);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mc = MonteCarlo::new(100);
        let a = mc.run(&mut StdRng::seed_from_u64(5), |rng| vec![normal(rng)]);
        let b = mc.run(&mut StdRng::seed_from_u64(5), |rng| vec![normal(rng)]);
        assert_eq!(a.summary(0).mean, b.summary(0).mean);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let _ = MonteCarlo::new(0);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn inconsistent_model_outputs_panic() {
        let mc = MonteCarlo::new(3);
        let mut toggle = false;
        let mut rng = StdRng::seed_from_u64(0);
        mc.run(&mut rng, |_| {
            toggle = !toggle;
            if toggle {
                vec![1.0, 2.0]
            } else {
                vec![1.0]
            }
        });
    }
}
