//! Multi-dimensional Hermite polynomial basis.

use vaem_numeric::poly::{hermite_norm_sqr, hermite_values_upto};

/// A multi-index `(i₁, …, i_D)` identifying the product Hermite polynomial
/// `H_{i₁}(ζ₁)·…·H_{i_D}(ζ_D)` of the paper's eq. (4).
pub type MultiIndex = Vec<u8>;

/// The D-dimensional probabilists' Hermite basis truncated at a total order.
///
/// # Example
/// ```
/// use vaem_stochastic::HermiteBasis;
/// let basis = HermiteBasis::new(3, 2);
/// // 1 constant + 3 linear + 3 squares + 3 cross terms = 10
/// assert_eq!(basis.len(), 10);
/// let row = basis.evaluate(&[0.5, -1.0, 2.0]);
/// assert_eq!(row[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HermiteBasis {
    dim: usize,
    order: u8,
    indices: Vec<MultiIndex>,
}

impl HermiteBasis {
    /// Builds the basis of all multi-indices with total order ≤ `order` in
    /// `dim` variables. The first basis function is always the constant.
    pub fn new(dim: usize, order: u8) -> Self {
        let mut indices: Vec<MultiIndex> = Vec::new();
        let mut current = vec![0u8; dim];
        collect_indices(&mut indices, &mut current, 0, order);
        // Sort by total order then lexicographically for a stable layout with
        // the constant term first.
        indices.sort_by_key(|idx| {
            let total: u32 = idx.iter().map(|&v| v as u32).sum();
            (total, idx.clone())
        });
        Self {
            dim,
            order,
            indices,
        }
    }

    /// Number of random dimensions D.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum total order of the basis.
    pub fn order(&self) -> u8 {
        self.order
    }

    /// Number of basis functions
    /// (`(D + order)! / (D!·order!)`, e.g. `1 + D + D(D+1)/2` for order 2).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when the basis is empty (never happens for `dim ≥ 0`).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The multi-indices in basis order.
    pub fn indices(&self) -> &[MultiIndex] {
        &self.indices
    }

    /// Squared norm `⟨Ψ_α²⟩ = Π α_i!` of basis function `alpha`.
    pub fn norm_sqr(&self, alpha: usize) -> f64 {
        self.indices[alpha]
            .iter()
            .map(|&o| hermite_norm_sqr(o as usize))
            .product()
    }

    /// Evaluates every basis function at the point `zeta`.
    ///
    /// # Panics
    /// Panics if `zeta.len() != self.dim()`.
    pub fn evaluate(&self, zeta: &[f64]) -> Vec<f64> {
        assert_eq!(
            zeta.len(),
            self.dim,
            "basis evaluation: wrong point dimension"
        );
        // Per-dimension 1-D Hermite values up to the max order.
        let per_dim: Vec<Vec<f64>> = zeta
            .iter()
            .map(|&z| hermite_values_upto(self.order as usize, z))
            .collect();
        self.indices
            .iter()
            .map(|idx| {
                idx.iter()
                    .enumerate()
                    .map(|(d, &o)| per_dim[d][o as usize])
                    .product()
            })
            .collect()
    }
}

fn collect_indices(out: &mut Vec<MultiIndex>, current: &mut MultiIndex, pos: usize, budget: u8) {
    if pos == current.len() {
        out.push(current.clone());
        return;
    }
    for o in 0..=budget {
        current[pos] = o;
        collect_indices(out, current, pos + 1, budget - o);
    }
    current[pos] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::poly::GaussHermite;

    #[test]
    fn basis_size_formula_for_order_two() {
        for d in 1..=6 {
            let basis = HermiteBasis::new(d, 2);
            assert_eq!(basis.len(), 1 + d + d * (d + 1) / 2, "dim {d}");
        }
    }

    #[test]
    fn first_function_is_the_constant() {
        let basis = HermiteBasis::new(4, 2);
        assert_eq!(basis.indices()[0], vec![0, 0, 0, 0]);
        let row = basis.evaluate(&[1.0, 2.0, -3.0, 0.1]);
        assert_eq!(row[0], 1.0);
    }

    #[test]
    fn norms_are_products_of_factorials() {
        let basis = HermiteBasis::new(2, 2);
        for (a, idx) in basis.indices().iter().enumerate() {
            let expected: f64 = idx
                .iter()
                .map(|&o| match o {
                    0 => 1.0,
                    1 => 1.0,
                    2 => 2.0,
                    _ => unreachable!(),
                })
                .product();
            assert_eq!(basis.norm_sqr(a), expected);
        }
    }

    #[test]
    fn basis_functions_are_orthogonal_under_gaussian_measure() {
        // Tensor 4-point Gauss-Hermite integrates products of order-2 chaos
        // polynomials exactly in 2 dimensions.
        let basis = HermiteBasis::new(2, 2);
        let rule = GaussHermite::new(4).unwrap();
        let m = basis.len();
        for a in 0..m {
            for b in 0..m {
                let mut integral = 0.0;
                for (&xa, &wa) in rule.nodes().iter().zip(rule.weights()) {
                    for (&xb, &wb) in rule.nodes().iter().zip(rule.weights()) {
                        let rows = basis.evaluate(&[xa, xb]);
                        integral += wa * wb * rows[a] * rows[b];
                    }
                }
                let expected = if a == b { basis.norm_sqr(a) } else { 0.0 };
                assert!(
                    (integral - expected).abs() < 1e-9,
                    "a={a} b={b}: {integral} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn evaluation_matches_manual_quadratic() {
        let basis = HermiteBasis::new(1, 2);
        let z = 1.7;
        let row = basis.evaluate(&[z]);
        assert_eq!(row.len(), 3);
        assert_eq!(row[0], 1.0);
        assert!((row[1] - z).abs() < 1e-14);
        assert!((row[2] - (z * z - 1.0)).abs() < 1e-14);
    }
}
