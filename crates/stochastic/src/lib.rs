//! Spectral stochastic collocation (SSCM) and Monte-Carlo drivers.
//!
//! Section II.B of the paper: the solver outputs are expanded in a
//! second-order Hermite polynomial chaos of the reduced independent Gaussian
//! variables (eq. 4); the expansion coefficients are determined from solver
//! runs at sparse-grid collocation points, and mean/variance follow directly
//! from the coefficients (eq. 5). A Monte-Carlo driver provides the accuracy
//! reference used by the paper's tables.
//!
//! Components:
//!
//! * [`HermiteBasis`] — multi-dimensional probabilists' Hermite basis up to a
//!   total order (2 in the paper).
//! * [`CollocationGrid`] — the sparse collocation point set whose size
//!   follows the paper's `2d² + 3d + 1` count.
//! * [`PolynomialChaos`] — a fitted chaos expansion of one output quantity
//!   (mean, variance, evaluation, sampling).
//! * [`SparseCollocation`] — the SSCM driver: evaluate a model at the grid
//!   points, fit one [`PolynomialChaos`] per output.
//! * [`MonteCarlo`] — the reference sampler with streaming statistics.
//!
//! # Example
//!
//! ```
//! use vaem_stochastic::SparseCollocation;
//!
//! // A quadratic model with known statistics: y = 1 + ζ₀ + ζ₁² (mean 2, var 1 + 2 = 3).
//! let sscm = SparseCollocation::new(2);
//! let outputs: Vec<Vec<f64>> = sscm
//!     .points()
//!     .iter()
//!     .map(|z| vec![1.0 + z[0] + z[1] * z[1]])
//!     .collect();
//! let pce = sscm.fit(&outputs)?;
//! assert!((pce[0].mean() - 2.0).abs() < 1e-10);
//! assert!((pce[0].variance() - 3.0).abs() < 1e-9);
//! # Ok::<(), vaem_numeric::NumericError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod collocation;
mod hermite_basis;
mod monte_carlo;
mod pce;
mod sparse_grid;
mod statistics;

pub use collocation::SparseCollocation;
pub use hermite_basis::{HermiteBasis, MultiIndex};
pub use monte_carlo::{MonteCarlo, MonteCarloOutcome};
pub use pce::PolynomialChaos;
pub use sparse_grid::{paper_point_count, CollocationGrid};
pub use statistics::{compare, StatComparison, SummaryStats};
