//! Fitted polynomial chaos expansion of a scalar output.

use crate::HermiteBasis;
use vaem_numeric::dense::{DMatrix, Qr};
use vaem_numeric::NumericError;

/// A second-order (or general-order) Hermite chaos expansion
/// `y(ζ) = Σ_α c_α·Ψ_α(ζ)` of one scalar output quantity (paper eq. 4),
/// fitted from collocation samples.
///
/// The statistics of eq. (5) follow directly from the coefficients:
/// mean = `c₀`, variance = `Σ_{α≠0} c_α²·⟨Ψ_α²⟩`.
///
/// # Example
/// ```
/// use vaem_stochastic::{HermiteBasis, PolynomialChaos};
/// let basis = HermiteBasis::new(1, 2);
/// // y = 3 + 2·ζ  =>  mean 3, variance 4.
/// let points = vec![vec![-1.5], vec![-0.5], vec![0.5], vec![1.5]];
/// let values = vec![0.0, 2.0, 4.0, 6.0];
/// let pce = PolynomialChaos::fit(basis, &points, &values)?;
/// assert!((pce.mean() - 3.0).abs() < 1e-12);
/// assert!((pce.variance() - 4.0).abs() < 1e-12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolynomialChaos {
    basis: HermiteBasis,
    coefficients: Vec<f64>,
}

impl PolynomialChaos {
    /// Fits the expansion to samples `(points[i], values[i])` by regression
    /// (least squares on the collocation samples).
    ///
    /// # Errors
    /// * [`NumericError::DimensionMismatch`] if the number of values differs
    ///   from the number of points or there are fewer samples than basis
    ///   functions.
    /// * Propagates QR failures for degenerate point sets.
    pub fn fit(
        basis: HermiteBasis,
        points: &[Vec<f64>],
        values: &[f64],
    ) -> Result<Self, NumericError> {
        if points.len() != values.len() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "{} collocation points but {} output values",
                    points.len(),
                    values.len()
                ),
            });
        }
        if points.len() < basis.len() {
            return Err(NumericError::DimensionMismatch {
                detail: format!(
                    "need at least {} samples to fit {} chaos coefficients",
                    basis.len(),
                    basis.len()
                ),
            });
        }
        let design = DMatrix::from_fn(points.len(), basis.len(), |i, j| {
            basis.evaluate(&points[i])[j]
        });
        let qr = Qr::new(&design)?;
        let coefficients = qr.solve_least_squares(values)?;
        Ok(Self {
            basis,
            coefficients,
        })
    }

    /// The underlying basis.
    pub fn basis(&self) -> &HermiteBasis {
        &self.basis
    }

    /// Chaos coefficients in basis order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Mean of the output (the coefficient of the constant basis function).
    pub fn mean(&self) -> f64 {
        self.coefficients[0]
    }

    /// Variance of the output: `Σ_{α≠0} c_α²·⟨Ψ_α²⟩` (paper eq. 5).
    pub fn variance(&self) -> f64 {
        self.coefficients
            .iter()
            .enumerate()
            .skip(1)
            .map(|(a, &c)| c * c * self.basis.norm_sqr(a))
            .sum()
    }

    /// Standard deviation of the output.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Evaluates the surrogate at a reduced-variable point.
    ///
    /// # Panics
    /// Panics if `zeta.len()` differs from the basis dimension.
    pub fn evaluate(&self, zeta: &[f64]) -> f64 {
        self.basis
            .evaluate(zeta)
            .iter()
            .zip(self.coefficients.iter())
            .map(|(psi, c)| psi * c)
            .sum()
    }

    /// First-order Sobol-style contribution of dimension `d`: the summed
    /// squared coefficients (times norms) of basis functions involving only
    /// `ζ_d`, divided by the total variance. Useful for ranking which reduced
    /// factors drive the output.
    pub fn main_effect(&self, d: usize) -> f64 {
        let total = self.variance();
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (a, idx) in self.basis.indices().iter().enumerate().skip(1) {
            let only_d = idx
                .iter()
                .enumerate()
                .all(|(k, &o)| (k == d && o > 0) || (k != d && o == 0));
            if only_d {
                acc += self.coefficients[a] * self.coefficients[a] * self.basis.norm_sqr(a);
            }
        }
        acc / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollocationGrid;

    fn fit_model(dim: usize, f: impl Fn(&[f64]) -> f64) -> PolynomialChaos {
        let grid = CollocationGrid::level2(dim);
        let values: Vec<f64> = grid.points().iter().map(|p| f(p)).collect();
        PolynomialChaos::fit(HermiteBasis::new(dim, 2), grid.points(), &values).unwrap()
    }

    #[test]
    fn linear_model_statistics_are_exact() {
        // y = 2 + 3ζ0 - ζ1: mean 2, variance 9 + 1 = 10.
        let pce = fit_model(2, |z| 2.0 + 3.0 * z[0] - z[1]);
        assert!((pce.mean() - 2.0).abs() < 1e-10);
        assert!((pce.variance() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn quadratic_model_statistics_are_exact() {
        // y = 1 + ζ0² + 0.5·ζ0·ζ1.
        // Var = Var(ζ0²) + 0.25·Var(ζ0ζ1) = 2 + 0.25 = 2.25; mean = 2.
        let pce = fit_model(2, |z| 1.0 + z[0] * z[0] + 0.5 * z[0] * z[1]);
        assert!((pce.mean() - 2.0).abs() < 1e-10);
        assert!((pce.variance() - 2.25).abs() < 1e-9);
    }

    #[test]
    fn surrogate_reproduces_model_at_new_points() {
        let f = |z: &[f64]| 0.3 - 1.2 * z[0] + 0.8 * z[1] * z[1] - 0.4 * z[0] * z[1];
        let pce = fit_model(2, f);
        for z in [[0.3, -0.7], [1.1, 0.2], [-2.0, 1.5]] {
            assert!((pce.evaluate(&z) - f(&z)).abs() < 1e-9, "at {z:?}");
        }
    }

    #[test]
    fn main_effects_rank_dominant_dimension() {
        // ζ0 drives almost all the variance.
        let pce = fit_model(3, |z| 5.0 * z[0] + 0.1 * z[1] + 0.1 * z[2] * z[2]);
        assert!(pce.main_effect(0) > 0.95);
        assert!(pce.main_effect(1) < 0.05);
    }

    #[test]
    fn higher_dimension_count_still_fits() {
        let dim = 8;
        let pce = fit_model(dim, |z| z.iter().sum::<f64>());
        assert!((pce.variance() - dim as f64).abs() < 1e-8);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let basis = HermiteBasis::new(2, 2);
        let pts = vec![vec![0.0, 0.0]];
        assert!(PolynomialChaos::fit(basis.clone(), &pts, &[1.0, 2.0]).is_err());
        assert!(PolynomialChaos::fit(basis, &pts, &[1.0]).is_err());
    }
}
