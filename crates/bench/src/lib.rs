//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary honours two environment variables:
//!
//! * `VAEM_FULL=1` — run at paper scale (fine meshes, 10 000-run Monte
//!   Carlo). Without it the binaries use the scaled-down "quick" settings so
//!   that the whole harness completes in minutes.
//! * `VAEM_MC_RUNS=<n>` — override the Monte-Carlo sample count.

use vaem_parallel::env;

/// Returns `true` when the harness should run at paper scale.
pub fn full_scale() -> bool {
    env::flag("VAEM_FULL")
}

/// Environment variable selecting the number of sweep grid points.
pub const SWEEP_POINTS_ENV: &str = "VAEM_SWEEP_POINTS";

/// Environment variable overriding the adaptive-sweep indicator tolerance.
pub const SWEEP_TOL_ENV: &str = "VAEM_SWEEP_TOL";

/// Smallest grid the sweep binaries will run; unusable
/// `VAEM_SWEEP_POINTS` values clamp here (with a warning) instead of
/// panicking in `log_grid` or silently producing an empty sweep.
pub const MIN_SWEEP_POINTS: usize = 1;

/// Upper bound on the sweep point count (guards against typos such as
/// `VAEM_SWEEP_POINTS=1e9`, which would otherwise queue a multi-day run).
pub const MAX_SWEEP_POINTS: usize = 100_000;

/// The configured sweep point count: `VAEM_SWEEP_POINTS` when set to a
/// positive integer (capped at [`MAX_SWEEP_POINTS`]), `default` when
/// unset, and [`MIN_SWEEP_POINTS`] — with a one-time warning on stderr —
/// when the variable is set to zero, a negative number or garbage
/// (previously those either panicked inside `log_grid` or silently fell
/// back to the default).
pub fn sweep_points(default: usize) -> usize {
    env::positive_usize(
        SWEEP_POINTS_ENV,
        MAX_SWEEP_POINTS,
        || default,
        MIN_SWEEP_POINTS,
        "running a 1-point sweep",
    )
}

/// The configured adaptive-sweep tolerance: `VAEM_SWEEP_TOL` when set to a
/// finite positive number, `default` when unset, and `default` — with a
/// one-time warning on stderr — when the variable holds garbage.
pub fn sweep_tolerance(default: f64) -> f64 {
    env::positive_f64(SWEEP_TOL_ENV, default, "using the default tolerance")
}

/// Monte-Carlo run count override, if any.
pub fn mc_runs_override() -> Option<usize> {
    env::opt_usize("VAEM_MC_RUNS")
}

/// Upper bound per axis for `VAEM_ARRAY_ROWS`/`VAEM_ARRAY_COLS` (a 8×8
/// array is already a 64-terminal extraction; anything bigger is a typo).
pub const MAX_ARRAY_DIM: usize = 8;

/// TSV-array grid override: `(VAEM_ARRAY_ROWS, VAEM_ARRAY_COLS)` when set
/// to positive integers (each capped at [`MAX_ARRAY_DIM`]), the defaults
/// otherwise. Unusable values fall back to the default for that axis with
/// a warning on stderr.
pub fn array_dims(default_rows: usize, default_cols: usize) -> (usize, usize) {
    let read = |name: &str, default: usize| -> usize {
        env::positive_usize(
            name,
            MAX_ARRAY_DIM,
            || default,
            default,
            "using the default grid dimension",
        )
    };
    (
        read("VAEM_ARRAY_ROWS", default_rows),
        read("VAEM_ARRAY_COLS", default_cols),
    )
}

/// Logarithmic frequency grid from `lo` to `hi` (inclusive); a single-point
/// grid collapses to `lo`.
///
/// # Panics
/// Panics when `n == 0` or the endpoints are not positive.
pub fn log_grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "log_grid needs at least one point");
    assert!(lo > 0.0 && hi > 0.0, "log_grid endpoints must be positive");
    if n == 1 {
        return vec![lo];
    }
    let span = (hi / lo).ln();
    (0..n)
        .map(|i| lo * (span * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Formats a number of seconds compactly.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.2} s")
    } else {
        format!("{:.1} min", seconds / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(12.3456), "12.35 s");
        assert_eq!(format_seconds(120.0), "2.0 min");
    }

    #[test]
    fn sweep_knob_parsing_rules() {
        use env::Parsed::*;
        // The sweep knobs share the vaem_parallel::env parsers; pin the
        // rules that matter to the sweep binaries here. Unusable point
        // counts clamp to MIN_SWEEP_POINTS (with a warning) instead of
        // panicking in log_grid or silently producing an empty sweep.
        assert_eq!(env::parse_positive_usize(None, MAX_SWEEP_POINTS), Unset);
        assert_eq!(
            env::parse_positive_usize(Some("16 points"), MAX_SWEEP_POINTS),
            Invalid
        );
        assert_eq!(
            env::parse_positive_usize(Some("999999999"), MAX_SWEEP_POINTS),
            Value(MAX_SWEEP_POINTS)
        );
        assert_eq!(env::parse_positive_f64(Some("NaN")), Invalid);
        assert_eq!(env::parse_positive_f64(Some(" 1e-3 ")), Value(1e-3));
    }

    #[test]
    fn log_grid_spans_the_endpoints() {
        let g = log_grid(5, 1.0e8, 1.0e10);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0e8).abs() < 1.0);
        assert!((g[4] - 1.0e10).abs() < 100.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(log_grid(1, 2.0, 8.0), vec![2.0]);
    }
}
