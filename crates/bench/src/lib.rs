//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary honours two environment variables:
//!
//! * `VAEM_FULL=1` — run at paper scale (fine meshes, 10 000-run Monte
//!   Carlo). Without it the binaries use the scaled-down "quick" settings so
//!   that the whole harness completes in minutes.
//! * `VAEM_MC_RUNS=<n>` — override the Monte-Carlo sample count.

/// Returns `true` when the harness should run at paper scale.
pub fn full_scale() -> bool {
    std::env::var("VAEM_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Environment variable selecting the number of sweep grid points.
pub const SWEEP_POINTS_ENV: &str = "VAEM_SWEEP_POINTS";

/// Environment variable overriding the adaptive-sweep indicator tolerance.
pub const SWEEP_TOL_ENV: &str = "VAEM_SWEEP_TOL";

/// Smallest grid the sweep binaries will run; unusable
/// `VAEM_SWEEP_POINTS` values clamp here (with a warning) instead of
/// panicking in `log_grid` or silently producing an empty sweep.
pub const MIN_SWEEP_POINTS: usize = 1;

/// Upper bound on the sweep point count (guards against typos such as
/// `VAEM_SWEEP_POINTS=1e9`, which would otherwise queue a multi-day run).
pub const MAX_SWEEP_POINTS: usize = 100_000;

/// How a `VAEM_SWEEP_POINTS`-style value parsed (mirrors the
/// `VAEM_THREADS` handling in `vaem_parallel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepPointSetting {
    /// Variable not set: use the binary's default.
    Unset,
    /// Set but unusable (garbage, zero or negative): clamp to
    /// [`MIN_SWEEP_POINTS`] and warn, so a typo degrades to a tiny sweep
    /// instead of a panic or an empty grid.
    Invalid,
    /// A usable point count, capped at [`MAX_SWEEP_POINTS`].
    Count(usize),
}

/// Parses a `VAEM_SWEEP_POINTS`-style value.
fn parse_sweep_points(value: Option<&str>) -> SweepPointSetting {
    let Some(raw) = value else {
        return SweepPointSetting::Unset;
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => SweepPointSetting::Invalid,
        Ok(n) => SweepPointSetting::Count(n.min(MAX_SWEEP_POINTS)),
    }
}

/// The configured sweep point count: `VAEM_SWEEP_POINTS` when set to a
/// positive integer (capped at [`MAX_SWEEP_POINTS`]), `default` when
/// unset, and [`MIN_SWEEP_POINTS`] — with a one-time warning on stderr —
/// when the variable is set to zero, a negative number or garbage
/// (previously those either panicked inside `log_grid` or silently fell
/// back to the default).
pub fn sweep_points(default: usize) -> usize {
    let value = std::env::var(SWEEP_POINTS_ENV).ok();
    match parse_sweep_points(value.as_deref()) {
        SweepPointSetting::Count(n) => n,
        SweepPointSetting::Unset => default,
        SweepPointSetting::Invalid => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: {SWEEP_POINTS_ENV}={:?} is not a positive integer; \
                     running a {MIN_SWEEP_POINTS}-point sweep",
                    value.as_deref().unwrap_or_default()
                );
            });
            MIN_SWEEP_POINTS
        }
    }
}

/// Parses a `VAEM_SWEEP_TOL`-style value: a finite, positive relative
/// tolerance, `None` otherwise.
fn parse_sweep_tolerance(value: Option<&str>) -> Option<f64> {
    value
        .and_then(|raw| raw.trim().parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
}

/// The configured adaptive-sweep tolerance: `VAEM_SWEEP_TOL` when set to a
/// finite positive number, `default` when unset, and `default` — with a
/// one-time warning on stderr — when the variable holds garbage.
pub fn sweep_tolerance(default: f64) -> f64 {
    let value = std::env::var(SWEEP_TOL_ENV).ok();
    match (parse_sweep_tolerance(value.as_deref()), value.as_deref()) {
        (Some(tol), _) => tol,
        (None, None) => default,
        (None, Some(raw)) => {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: {SWEEP_TOL_ENV}={raw:?} is not a positive finite number; \
                     using the default tolerance {default}"
                );
            });
            default
        }
    }
}

/// Monte-Carlo run count override, if any.
pub fn mc_runs_override() -> Option<usize> {
    std::env::var("VAEM_MC_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Upper bound per axis for `VAEM_ARRAY_ROWS`/`VAEM_ARRAY_COLS` (a 8×8
/// array is already a 64-terminal extraction; anything bigger is a typo).
pub const MAX_ARRAY_DIM: usize = 8;

/// TSV-array grid override: `(VAEM_ARRAY_ROWS, VAEM_ARRAY_COLS)` when set
/// to positive integers (each capped at [`MAX_ARRAY_DIM`]), the defaults
/// otherwise. Unusable values fall back to the default for that axis with
/// a warning on stderr.
pub fn array_dims(default_rows: usize, default_cols: usize) -> (usize, usize) {
    let parse = |env: &str, default: usize| -> usize {
        match std::env::var(env) {
            Err(_) => default,
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n > 0 => n.min(MAX_ARRAY_DIM),
                _ => {
                    eprintln!("warning: {env}={raw:?} is not a positive integer; using {default}");
                    default
                }
            },
        }
    };
    (
        parse("VAEM_ARRAY_ROWS", default_rows),
        parse("VAEM_ARRAY_COLS", default_cols),
    )
}

/// Logarithmic frequency grid from `lo` to `hi` (inclusive); a single-point
/// grid collapses to `lo`.
///
/// # Panics
/// Panics when `n == 0` or the endpoints are not positive.
pub fn log_grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "log_grid needs at least one point");
    assert!(lo > 0.0 && hi > 0.0, "log_grid endpoints must be positive");
    if n == 1 {
        return vec![lo];
    }
    let span = (hi / lo).ln();
    (0..n)
        .map(|i| lo * (span * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Formats a number of seconds compactly.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.2} s")
    } else {
        format!("{:.1} min", seconds / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(12.3456), "12.35 s");
        assert_eq!(format_seconds(120.0), "2.0 min");
    }

    #[test]
    fn sweep_points_parsing_rules() {
        use SweepPointSetting::*;
        // Unset: fall back to the binary's default.
        assert_eq!(parse_sweep_points(None), Unset);
        // Garbage, zero and negative values clamp to the minimum (with a
        // warning) instead of panicking in log_grid or silently producing
        // an empty sweep.
        assert_eq!(parse_sweep_points(Some("")), Invalid);
        assert_eq!(parse_sweep_points(Some("abc")), Invalid);
        assert_eq!(parse_sweep_points(Some("0")), Invalid);
        assert_eq!(parse_sweep_points(Some("-4")), Invalid);
        assert_eq!(parse_sweep_points(Some("2.5")), Invalid);
        assert_eq!(parse_sweep_points(Some("16 points")), Invalid);
        // Valid values pass through, capped at MAX_SWEEP_POINTS.
        assert_eq!(parse_sweep_points(Some("1")), Count(1));
        assert_eq!(parse_sweep_points(Some(" 64 ")), Count(64));
        assert_eq!(
            parse_sweep_points(Some("999999999")),
            Count(MAX_SWEEP_POINTS)
        );
    }

    #[test]
    fn sweep_tolerance_parsing_rules() {
        assert_eq!(parse_sweep_tolerance(None), None);
        assert_eq!(parse_sweep_tolerance(Some("")), None);
        assert_eq!(parse_sweep_tolerance(Some("abc")), None);
        assert_eq!(parse_sweep_tolerance(Some("0")), None);
        assert_eq!(parse_sweep_tolerance(Some("-0.1")), None);
        assert_eq!(parse_sweep_tolerance(Some("inf")), None);
        assert_eq!(parse_sweep_tolerance(Some("NaN")), None);
        assert_eq!(parse_sweep_tolerance(Some("0.05")), Some(0.05));
        assert_eq!(parse_sweep_tolerance(Some(" 1e-3 ")), Some(1e-3));
    }

    #[test]
    fn log_grid_spans_the_endpoints() {
        let g = log_grid(5, 1.0e8, 1.0e10);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0e8).abs() < 1.0);
        assert!((g[4] - 1.0e10).abs() < 100.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(log_grid(1, 2.0, 8.0), vec![2.0]);
    }
}
