//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary honours two environment variables:
//!
//! * `VAEM_FULL=1` — run at paper scale (fine meshes, 10 000-run Monte
//!   Carlo). Without it the binaries use the scaled-down "quick" settings so
//!   that the whole harness completes in minutes.
//! * `VAEM_MC_RUNS=<n>` — override the Monte-Carlo sample count.

/// Returns `true` when the harness should run at paper scale.
pub fn full_scale() -> bool {
    std::env::var("VAEM_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Monte-Carlo run count override, if any.
pub fn mc_runs_override() -> Option<usize> {
    std::env::var("VAEM_MC_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Formats a number of seconds compactly.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.2} s")
    } else {
        format!("{:.1} min", seconds / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(12.3456), "12.35 s");
        assert_eq!(format_seconds(120.0), "2.0 min");
    }
}
