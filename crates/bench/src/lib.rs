//! Shared helpers for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary honours two environment variables:
//!
//! * `VAEM_FULL=1` — run at paper scale (fine meshes, 10 000-run Monte
//!   Carlo). Without it the binaries use the scaled-down "quick" settings so
//!   that the whole harness completes in minutes.
//! * `VAEM_MC_RUNS=<n>` — override the Monte-Carlo sample count.

/// Returns `true` when the harness should run at paper scale.
pub fn full_scale() -> bool {
    std::env::var("VAEM_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Monte-Carlo run count override, if any.
pub fn mc_runs_override() -> Option<usize> {
    std::env::var("VAEM_MC_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Logarithmic frequency grid from `lo` to `hi` (inclusive); a single-point
/// grid collapses to `lo`.
///
/// # Panics
/// Panics when `n == 0` or the endpoints are not positive.
pub fn log_grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "log_grid needs at least one point");
    assert!(lo > 0.0 && hi > 0.0, "log_grid endpoints must be positive");
    if n == 1 {
        return vec![lo];
    }
    let span = (hi / lo).ln();
    (0..n)
        .map(|i| lo * (span * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Formats a number of seconds compactly.
pub fn format_seconds(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.2} s")
    } else {
        format!("{:.1} min", seconds / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(12.3456), "12.35 s");
        assert_eq!(format_seconds(120.0), "2.0 min");
    }

    #[test]
    fn log_grid_spans_the_endpoints() {
        let g = log_grid(5, 1.0e8, 1.0e10);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0e8).abs() < 1.0);
        assert!((g[4] - 1.0e10).abs() < 100.0);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(log_grid(1, 2.0, 8.0), vec![2.0]);
    }
}
