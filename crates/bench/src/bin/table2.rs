//! Regenerates **Table II** of the paper: self- and coupling capacitances of
//! TSV1 in the two-TSV structure under lateral-wall roughness and substrate
//! RDF, comparing Monte Carlo against SSCM.
//!
//! Run with `VAEM_FULL=1` for the paper-scale setup.

use vaem::experiments::tsv::TsvExperiment;
use vaem_bench::{format_seconds, full_scale, mc_runs_override};

fn main() {
    let experiment = if full_scale() {
        TsvExperiment::paper()
    } else {
        TsvExperiment::quick()
    };
    let experiment = match mc_runs_override() {
        Some(n) => experiment.with_mc_runs(n),
        None => experiment,
    };

    println!("== Table II: variational capacitance extraction of the TSV structure [fF] ==");
    println!(
        "   (mode: {}, MC runs: {})",
        if full_scale() { "paper-scale" } else { "quick" },
        experiment.mc_runs
    );
    println!();

    match experiment.run() {
        Ok(result) => {
            println!("{}", result.table().render());
            println!(
                "SSCM solves: {}  total reduced variables: {}  wall clock: SSCM {} vs MC {}",
                result.collocation_runs,
                result.total_reduced_dim(),
                format_seconds(result.sscm_seconds),
                format_seconds(result.mc_seconds)
            );
            println!();
            println!("variable reduction per group:");
            for g in &result.reductions {
                println!("  {:<18} {:>4} -> {:>3}", g.name, g.full_dim, g.reduced_dim);
            }
        }
        Err(e) => {
            eprintln!("table II failed: {e}");
            std::process::exit(1);
        }
    }
}
