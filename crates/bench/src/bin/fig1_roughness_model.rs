//! Regenerates **Fig. 1** of the paper: the traditional geometric variation
//! model destroys the FVM mesh once the roughness amplitude approaches the
//! local grid pitch, while the continuous-surface (smart) model keeps the
//! mesh valid.
//!
//! The binary sweeps the roughness σ_G, applies both models to the metal-plug
//! interface and reports the fraction of random draws that keep the mesh
//! valid; it also dumps one perturbed cross-section per model to CSV for
//! plotting (`fig1_traditional.csv`, `fig1_continuous.csv`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use vaem_mesh::quality::assess;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_numeric::dense::Cholesky;
use vaem_variation::{
    apply_roughness, covariance_matrix, standard_normal_vector, CorrelationKernel,
    FacetPerturbation, GeometricModel,
};

fn main() {
    let structure = build_metalplug_structure(&MetalPlugConfig::default());
    let facet = structure
        .facet("plug1_interface")
        .expect("metal-plug structure has the plug1 interface facet");
    let positions: Vec<[f64; 3]> = facet
        .nodes
        .iter()
        .map(|&n| structure.mesh.position(n))
        .collect();

    let draws = 200;
    println!("== Fig. 1: mesh validity under the traditional vs continuous surface model ==");
    println!("   ({draws} random draws per point, correlation length 0.7 um)");
    println!();
    println!("sigma_G [um]   traditional valid [%]   continuous valid [%]");

    let mut rng = StdRng::seed_from_u64(1);
    for &sigma in &[0.1, 0.25, 0.5, 0.75, 1.0, 1.5] {
        let cov = covariance_matrix(
            &positions,
            sigma,
            CorrelationKernel::Exponential { length: 0.7 },
        );
        let chol = Cholesky::new_regularized(&cov).expect("covariance factorizes");
        let mut valid = [0usize; 2];
        for _ in 0..draws {
            let z = standard_normal_vector(&mut rng, facet.nodes.len());
            let offsets = chol.correlate(&z);
            for (slot, model) in [
                GeometricModel::Traditional,
                GeometricModel::ContinuousSurface,
            ]
            .into_iter()
            .enumerate()
            {
                let mut mesh = structure.mesh.clone();
                apply_roughness(
                    &mut mesh,
                    model,
                    &[FacetPerturbation::new(facet, offsets.clone())],
                );
                if assess(&mesh, 1e-9).is_valid() {
                    valid[slot] += 1;
                }
            }
        }
        println!(
            "{:>10.2}   {:>21.1}   {:>20.1}",
            sigma,
            100.0 * valid[0] as f64 / draws as f64,
            100.0 * valid[1] as f64 / draws as f64
        );
    }

    // Dump one large-amplitude cross-section per model (the pictures of Fig. 1).
    let sigma = 1.0;
    let cov = covariance_matrix(
        &positions,
        sigma,
        CorrelationKernel::Exponential { length: 0.7 },
    );
    let chol = Cholesky::new_regularized(&cov).expect("covariance factorizes");
    let mut rng = StdRng::seed_from_u64(7);
    let offsets = chol.correlate(&standard_normal_vector(&mut rng, facet.nodes.len()));
    for (model, path) in [
        (GeometricModel::Traditional, "fig1_traditional.csv"),
        (GeometricModel::ContinuousSurface, "fig1_continuous.csv"),
    ] {
        let mut mesh = structure.mesh.clone();
        apply_roughness(
            &mut mesh,
            model,
            &[FacetPerturbation::new(facet, offsets.clone())],
        );
        let mut csv = String::from("x,y,z\n");
        // Cross-section through the middle of plug 1 (y = 5 um plane).
        for node in mesh.node_ids() {
            let p0 = structure.mesh.position(node);
            if (p0[1] - 5.0).abs() < 0.6 {
                let p = mesh.position(node);
                csv.push_str(&format!("{},{},{}\n", p[0], p[1], p[2]));
            }
        }
        if let Err(e) = fs::write(path, csv) {
            eprintln!("could not write {path}: {e}");
        } else {
            println!("wrote perturbed cross-section to {path}");
        }
    }
}
