//! TSV-array coupling experiment: the full K×K coupling-capacitance and
//! crosstalk matrices of an N×M via grid, an aggressor/victim frequency
//! sweep, and variation-aware crosstalk statistics over per-via
//! radius/position parameters.
//!
//! Environment:
//! * `VAEM_FULL=1` — paper-scale 3×3 array on the fine mesh.
//! * `VAEM_ARRAY_ROWS` / `VAEM_ARRAY_COLS` — grid dimensions override.
//! * `VAEM_MC_RUNS` — Monte-Carlo sample count of the statistics stage.
//! * `VAEM_SWEEP_POINTS` — aggressor/victim sweep point count.
//! * `VAEM_THREADS` / `VAEM_CHUNK` — worker threads / scheduling chunk.
//!
//! Flags:
//! * `--digest` — append a stable `digest: <16 hex>` line hashing every
//!   result value bit-for-bit, for the CI thread-determinism matrix.
//! * `--no-stats` — skip the SSCM/MC statistics stage (nominal only).

use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem::result_digest;
use vaem_bench::{array_dims, format_seconds, full_scale, mc_runs_override, sweep_points};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let digest = args.iter().any(|a| a == "--digest");
    let stats = !args.iter().any(|a| a == "--no-stats");
    if let Some(unknown) = args.iter().find(|a| *a != "--digest" && *a != "--no-stats") {
        eprintln!("unknown flag {unknown:?}; supported: --digest, --no-stats");
        std::process::exit(2);
    }

    let mut experiment = if full_scale() {
        TsvArrayExperiment::paper()
    } else {
        TsvArrayExperiment::quick()
    };
    let (rows, cols) = array_dims(experiment.geometry.rows, experiment.geometry.cols);
    experiment.geometry.rows = rows;
    experiment.geometry.cols = cols;
    // Grid overrides can invalidate the default aggressor position; clamp it
    // into the grid so `VAEM_ARRAY_ROWS=1` still drives a valid via.
    experiment.aggressor = (
        experiment.aggressor.0.min(rows - 1),
        experiment.aggressor.1.min(cols - 1),
    );
    if let Some(n) = mc_runs_override() {
        experiment = experiment.with_mc_runs(n);
    }
    experiment.sweep_points = sweep_points(experiment.sweep_points);

    println!(
        "== TSV array: {rows}x{cols} grid, pitch {} um, aggressor {} ({} mode) ==",
        experiment.geometry.pitch,
        experiment.aggressor_name(),
        if full_scale() { "paper-scale" } else { "quick" }
    );
    println!();

    let report = match experiment.nominal_report() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("tsv_array nominal stage failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());

    let mut digest_values: Vec<f64> = report
        .coupling
        .iter()
        .flatten()
        .copied()
        .chain(
            report
                .victims
                .iter()
                .flat_map(|v| v.spectrum.iter().map(|&(_, r)| r)),
        )
        .collect();

    if stats {
        match experiment.run() {
            Ok(result) => {
                println!(
                    "== variation statistics: sigma_r {} um, sigma_p {} um, MC {} runs ==",
                    experiment.sigma_radius, experiment.sigma_position, result.mc_runs
                );
                println!();
                println!("{}", result.table().render());
                println!(
                    "SSCM solves: {}  reduced variables: {}  wall clock: SSCM {} vs MC {}",
                    result.collocation_runs,
                    result.total_reduced_dim(),
                    format_seconds(result.sscm_seconds),
                    format_seconds(result.mc_seconds)
                );
                println!();
                println!("dominant variation source per matrix entry (first-order Sobol):");
                for (q, quantity) in result.quantities.iter().enumerate() {
                    let mut effects = result.group_main_effects(q);
                    effects.sort_by(|a, b| b.1.total_cmp(&a.1));
                    let top: Vec<String> = effects
                        .iter()
                        .take(3)
                        .map(|(name, share)| format!("{name} {:.1}%", 100.0 * share))
                        .collect();
                    println!("  {:<24} {}", quantity.label, top.join(", "));
                }
                println!();
                println!("health: {}", result.health.summary());
                for quantity in &result.quantities {
                    digest_values.push(quantity.sscm.mean);
                    digest_values.push(quantity.sscm.std);
                    digest_values.push(quantity.monte_carlo.mean);
                    digest_values.push(quantity.monte_carlo.std);
                    digest_values.extend_from_slice(&quantity.main_effects);
                }
                digest_values.extend(result.health.digest_values());
            }
            Err(e) => {
                eprintln!("tsv_array statistics stage failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if digest {
        println!("digest: {}", result_digest(digest_values));
    }
}
