//! Regenerates **Fig. 3** of the paper: the two-TSV test structure — mesh
//! statistics, terminal inventory and rough-facet sizes.

use vaem_fvm::terminals::label_terminals;
use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};

fn main() {
    let config = TsvConfig::default();
    let structure = build_tsv_structure(&config);
    let mesh = &structure.mesh;
    let (metal, insulator, semi) = structure.materials.counts();
    let [dx, dy, dz] = config.domain();

    println!("== Fig. 3: TSV test structure ==");
    println!("domain: {dx:.1} x {dy:.1} x {dz:.1} um");
    println!(
        "TSV cross-section {}x{} um, height {} um, pitch {} um, liner {} um",
        config.tsv_size, config.tsv_size, config.tsv_height, config.pitch, config.liner_thickness
    );
    println!(
        "nodes: {}   links: {}",
        mesh.node_count(),
        mesh.link_count()
    );
    println!("  (paper mesh: 4032 nodes, 11332 links)");
    println!("materials: {metal} metal, {insulator} insulator, {semi} semiconductor nodes");
    println!();

    let terminals = label_terminals(&structure);
    println!("terminals:");
    for k in 0..terminals.terminal_count() {
        println!(
            "  {:<6} {:>5} nodes",
            terminals.name(k),
            terminals.nodes_of(k).len()
        );
    }
    println!();

    println!("rough lateral facets (surface-roughness variables):");
    let mut total = 0usize;
    for facet in &structure.rough_facets {
        println!(
            "  {:<8} {:>4} nodes (normal {})",
            facet.name,
            facet.nodes.len(),
            facet.normal
        );
        total += facet.nodes.len();
    }
    println!("  total perturbed interface nodes: {total} (paper: 8 facets of 64 nodes)");
}
