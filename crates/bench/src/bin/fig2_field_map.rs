//! Regenerates **Fig. 2** of the paper: (a) the metal-plug mesh statistics
//! (node/link counts, material breakdown) and (b) the potential map on the
//! metal–semiconductor interface plane, written to `fig2_field.csv`.

use std::fs;
use vaem_fvm::{postprocess, CoupledSolver, SolverOptions};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_mesh::Axis;
use vaem_physics::DopingProfile;

fn main() {
    let config = MetalPlugConfig::default();
    let structure = build_metalplug_structure(&config);
    let mesh = &structure.mesh;
    let (metal, insulator, semi) = structure.materials.counts();

    println!("== Fig. 2(a): metal-plug structure mesh ==");
    println!(
        "nodes: {}   links: {}",
        mesh.node_count(),
        mesh.link_count()
    );
    println!("  (paper mesh: 1300 nodes, 3540 links)");
    println!("materials: {metal} metal, {insulator} insulator, {semi} semiconductor nodes");
    let (lx, ly, lz) = mesh.link_counts_by_axis();
    println!("links by axis: x {lx}, y {ly}, z {lz}");
    println!();

    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(mesh.node_count(), &semis, 1.0e5);
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default())
        .expect("solver binds to the structure");
    let dc = solver.solve_dc().expect("equilibrium converges");
    let ac = solver
        .solve_ac(&dc, "plug1", 1.0e9)
        .expect("AC solve at 1 GHz");

    println!(
        "== Fig. 2(b): potential on the metal-semiconductor interface (z = {} um) ==",
        config.silicon_height
    );
    let slice =
        postprocess::potential_slice(&solver, &ac.potential, Axis::Z, config.silicon_height, 1e-6);
    let min = slice.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    let max = slice
        .iter()
        .map(|(_, v)| *v)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{} interface samples, Re(V) range [{:.4}, {:.4}] V (paper colour scale: 0.49-0.57 V)",
        slice.len(),
        min,
        max
    );

    let mut csv = String::from("x,y,re_v\n");
    for (p, v) in &slice {
        csv.push_str(&format!("{},{},{}\n", p[0], p[1], v));
    }
    match fs::write("fig2_field.csv", csv) {
        Ok(()) => println!("wrote interface potential map to fig2_field.csv"),
        Err(e) => eprintln!("could not write fig2_field.csv: {e}"),
    }
}
