//! Swept-frequency experiment: interface-current spectrum of the metal-plug
//! structure (SSCM statistics per frequency point) plus the nominal input
//! impedance spectrum of the driven plug.
//!
//! Every collocation sample performs one DC solve and one sweep-aware AC
//! pass over the whole grid (one assembly + one symbolic factorization, a
//! numeric refactorization and a warm-started solve per point); samples fan
//! out over `VAEM_THREADS` worker threads with bit-identical results for
//! any thread count.
//!
//! Environment:
//! * `VAEM_SWEEP_POINTS=<n>` — number of grid points (default 16; the CI
//!   quick job runs a 4-point smoke).
//! * `VAEM_THREADS=<n>` — worker threads of the sample fan-out.

use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};
use vaem_bench::{format_seconds, log_grid};
use vaem_fvm::{postprocess, CoupledSolver};

fn main() {
    let points: usize = std::env::var("VAEM_SWEEP_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(16);
    let frequencies = log_grid(points, 1.0e8, 1.0e10);

    // Doping-only quick setup: a small reduced dimension keeps the
    // collocation count low, so the runtime is dominated by the sweeps.
    let analysis = MetalPlugExperiment::quick()
        .with_row(TableOneRow::DopingOnly)
        .analysis();

    println!("== AC frequency sweep: J(plug1) spectrum, {points} points [0.1, 10] GHz ==");
    let result = match analysis.run_frequency_sweep(&frequencies) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("frequency sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "   ({} collocation sweeps + nominal = {} AC solves, wall clock {})",
        result.collocation_runs,
        result.ac_solve_count(),
        format_seconds(result.seconds)
    );
    println!();
    let q = &result.quantities[0];
    println!(
        "{:>12}  {:>14}  {:>14}  {:>12}",
        "f [GHz]", "nominal [uA]", "SSCM mean", "SSCM std"
    );
    for (fi, f) in result.frequencies.iter().enumerate() {
        println!(
            "{:>12.4}  {:>14.6}  {:>14.6}  {:>12.6}",
            f / 1e9,
            q.nominal[fi],
            q.sscm[fi].mean,
            q.sscm[fi].std
        );
    }

    // Nominal impedance spectrum off the same sweep machinery.
    let structure = analysis.structure().clone();
    let doping = analysis.nominal_doping();
    let solver = match CoupledSolver::new(&structure, &doping, analysis.config().solver.clone()) {
        Ok(solver) => solver,
        Err(e) => {
            eprintln!("nominal solver failed: {e}");
            std::process::exit(1);
        }
    };
    let spectrum = solver.solve_dc().and_then(|dc| {
        let mut operator = solver.prepare_ac_sweep(&dc)?;
        let sweep = operator.sweep_terminal(&frequencies, "plug1")?;
        postprocess::impedance_spectrum(&solver, &sweep, "plug1")
    });
    match spectrum {
        Ok(z) => {
            println!();
            println!("nominal input impedance Z(f) of plug1:");
            println!(
                "{:>12}  {:>14}  {:>10}",
                "f [GHz]", "|Z| [Ohm]", "arg [deg]"
            );
            for (f, zf) in &z {
                println!(
                    "{:>12.4}  {:>14.3e}  {:>10.2}",
                    f / 1e9,
                    zf.abs(),
                    zf.im.atan2(zf.re).to_degrees()
                );
            }
        }
        Err(e) => {
            eprintln!("impedance spectrum failed: {e}");
            std::process::exit(1);
        }
    }
}
