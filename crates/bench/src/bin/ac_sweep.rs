//! Swept-frequency experiment: interface-current spectrum of the metal-plug
//! structure (SSCM statistics per frequency point), the nominal input
//! impedance spectrum of the driven plug, and the error-controlled
//! **adaptive** sweep over the same band.
//!
//! Every collocation sample performs one DC solve and one sweep-aware AC
//! pass over the whole grid (one assembly + one symbolic factorization, a
//! numeric refactorization and a warm-started solve per point); samples fan
//! out over `VAEM_THREADS` worker threads with bit-identical results for
//! any thread count. The adaptive pass keeps per-sample state across
//! refinement waves, so each refined point costs the same as a grid point.
//!
//! Environment:
//! * `VAEM_SWEEP_POINTS=<n>` — number of fixed-grid points (default 16; the
//!   CI quick job runs a 4-point smoke). Invalid/zero/negative values clamp
//!   to a 1-point sweep with a warning instead of panicking.
//! * `VAEM_SWEEP_TOL=<t>` — adaptive refinement tolerance (default 0.02).
//! * `VAEM_THREADS=<n>` — worker threads of the sample fan-out.

use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};
use vaem::{AdaptiveSweepOptions, PointOrigin};
use vaem_bench::{format_seconds, log_grid, sweep_points, sweep_tolerance};
use vaem_fvm::{postprocess, CoupledSolver};

fn main() {
    let points = sweep_points(16);
    let frequencies = log_grid(points, 1.0e8, 1.0e10);

    // Doping-only quick setup: a small reduced dimension keeps the
    // collocation count low, so the runtime is dominated by the sweeps.
    let analysis = MetalPlugExperiment::quick()
        .with_row(TableOneRow::DopingOnly)
        .analysis();

    println!("== AC frequency sweep: J(plug1) spectrum, {points} points [0.1, 10] GHz ==");
    let result = match analysis.run_frequency_sweep(&frequencies) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("frequency sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "   ({} collocation sweeps + nominal = {} AC solves, wall clock {})",
        result.collocation_runs,
        result.ac_solve_count(),
        format_seconds(result.seconds)
    );
    println!();
    let q = &result.quantities[0];
    println!(
        "{:>12}  {:>14}  {:>14}  {:>12}",
        "f [GHz]", "nominal [uA]", "SSCM mean", "SSCM std"
    );
    for (fi, f) in result.frequencies.iter().enumerate() {
        println!(
            "{:>12.4}  {:>14.6}  {:>14.6}  {:>12.6}",
            f / 1e9,
            q.nominal[fi],
            q.sscm[fi].mean,
            q.sscm[fi].std
        );
    }

    // Adaptive sweep over the same band: a coarse quarter-density grid,
    // refined where the spectra (nominal, SSCM mean, SSCM std) curve away
    // from their log-frequency interpolation.
    let tolerance = sweep_tolerance(0.02);
    let coarse_points = (points / 4).clamp(3, points.max(3));
    let coarse = log_grid(coarse_points, 1.0e8, 1.0e10);
    let options = AdaptiveSweepOptions {
        rel_tolerance: tolerance,
        max_points: points.max(coarse_points),
        ..AdaptiveSweepOptions::default()
    };
    println!();
    println!(
        "== Adaptive sweep: {coarse_points}-point coarse grid, tolerance {tolerance}, \
         budget {} points ==",
        options.max_points
    );
    let adaptive = match analysis.run_adaptive_frequency_sweep(&coarse, &options) {
        Ok(adaptive) => adaptive,
        Err(e) => {
            eprintln!("adaptive frequency sweep failed: {e}");
            std::process::exit(1);
        }
    };
    {
        let sweep = &adaptive.sweep;
        println!(
            "   ({} points after {} refinement wave(s), {} AC solves vs {} on the \
                 fixed grid{}, wall clock {})",
            sweep.frequencies.len(),
            adaptive.waves,
            adaptive.ac_solve_count(),
            result.ac_solve_count(),
            if adaptive.budget_exhausted {
                ", budget exhausted"
            } else {
                ""
            },
            format_seconds(sweep.seconds)
        );
        let aq = &sweep.quantities[0];
        println!(
            "{:>12}  {:>14}  {:>14}  {:>12}  {:>8}",
            "f [GHz]", "nominal [uA]", "SSCM mean", "SSCM std", "origin"
        );
        for (fi, f) in sweep.frequencies.iter().enumerate() {
            let origin = match adaptive.origins[fi] {
                PointOrigin::Coarse => "coarse".to_string(),
                PointOrigin::Refined { wave, depth } => format!("w{wave}/d{depth}"),
            };
            println!(
                "{:>12.4}  {:>14.6}  {:>14.6}  {:>12.6}  {:>8}",
                f / 1e9,
                aq.nominal[fi],
                aq.sscm[fi].mean,
                aq.sscm[fi].std,
                origin
            );
        }
    }

    // Nominal impedance and capacitance tables off the same sweep
    // machinery, evaluated on the ADAPTIVE grid: the refined points land
    // at error-driven log-frequencies nothing else has touched, so this
    // also exercises the open-circuit and ω > 0 guards of the
    // postprocessors away from the fixed grid.
    let refined = &adaptive.sweep.frequencies;
    let structure = analysis.structure().clone();
    let doping = analysis.nominal_doping();
    let solver = match CoupledSolver::new(&structure, &doping, analysis.config().solver.clone()) {
        Ok(solver) => solver,
        Err(e) => {
            eprintln!("nominal solver failed: {e}");
            std::process::exit(1);
        }
    };
    let tables = solver.solve_dc().and_then(|dc| {
        let mut operator = solver.prepare_ac_sweep(&dc)?;
        // One sweep of the driven plug serves both tables: the impedance
        // spectrum and, per point, one Maxwell capacitance column.
        let sweep = operator.sweep_terminal(refined, "plug1")?;
        let z = postprocess::impedance_spectrum(&solver, &sweep, "plug1")?;
        let mut columns = Vec::with_capacity(sweep.len());
        for ac in &sweep {
            columns.push(postprocess::capacitance_column_from(&solver, ac)?);
        }
        Ok((z, columns))
    });
    match tables {
        Ok((z, columns)) => {
            println!();
            println!(
                "nominal input impedance Z(f) of plug1 on the adaptive grid \
                 ({} points):",
                refined.len()
            );
            println!(
                "{:>12}  {:>14}  {:>10}",
                "f [GHz]", "|Z| [Ohm]", "arg [deg]"
            );
            for (f, zf) in &z {
                println!(
                    "{:>12.4}  {:>14.3e}  {:>10.2}",
                    f / 1e9,
                    zf.abs(),
                    zf.im.atan2(zf.re).to_degrees()
                );
            }
            println!();
            println!(
                "capacitance column of the driven plug C[plug1][·] [fF] on the adaptive grid:"
            );
            let terminals: Vec<&String> = columns[0].keys().collect();
            print!("{:>12}", "f [GHz]");
            for t in &terminals {
                print!("  {t:>12}");
            }
            println!();
            for (fi, f) in refined.iter().enumerate() {
                print!("{:>12.4}", f / 1e9);
                for t in &terminals {
                    print!("  {:>12.4}", columns[fi][*t] * 1.0e15);
                }
                println!();
            }
        }
        Err(e) => {
            eprintln!("nominal impedance/capacitance tables failed: {e}");
            std::process::exit(1);
        }
    }
}
