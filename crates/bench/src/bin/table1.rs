//! Regenerates **Table I** of the paper: current through the
//! metal–semiconductor interface of the metal-plug structure under surface
//! roughness (σ_G) and random doping fluctuation (σ_M), comparing the
//! variational solver + Monte Carlo against the variational solver + SSCM.
//!
//! Run with `VAEM_FULL=1` for the paper-scale setup.

use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};
use vaem_bench::{format_seconds, full_scale, mc_runs_override};

fn main() {
    let base = if full_scale() {
        MetalPlugExperiment::paper()
    } else {
        MetalPlugExperiment::quick()
    };
    let base = match mc_runs_override() {
        Some(n) => base.with_mc_runs(n),
        None => base,
    };

    println!("== Table I: interface current J through the metal-semiconductor interface [uA] ==");
    println!(
        "   (mode: {}, MC runs: {})",
        if full_scale() { "paper-scale" } else { "quick" },
        base.mc_runs
    );
    println!();

    let mut nominal_printed = false;
    for row in TableOneRow::ALL {
        let experiment = base.clone().with_row(row);
        match experiment.run() {
            Ok(result) => {
                if !nominal_printed {
                    println!(
                        "deterministic (nominal) value: {:.6} uA",
                        result.quantities[0].nominal
                    );
                    println!();
                    nominal_printed = true;
                }
                println!("--- variation: {} ---", row.label());
                println!("{}", result.table().render());
                println!(
                    "SSCM solves: {}  (reduced dims: {})  wall clock: SSCM {} vs MC {}",
                    result.collocation_runs,
                    result
                        .reductions
                        .iter()
                        .map(|g| format!("{}->{}", g.full_dim, g.reduced_dim))
                        .collect::<Vec<_>>()
                        .join(", "),
                    format_seconds(result.sscm_seconds),
                    format_seconds(result.mc_seconds)
                );
                println!();
            }
            Err(e) => {
                eprintln!("row '{}' failed: {e}", row.label());
                std::process::exit(1);
            }
        }
    }
}
