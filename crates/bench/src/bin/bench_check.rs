//! Bench-regression gate for CI.
//!
//! Compares a fresh criterion-shim JSON-lines run (`VAEM_BENCH_JSON`)
//! against a committed baseline (`BENCH_baseline.json` style) and fails
//! when any of the named benchmarks regressed beyond the allowed ratio.
//!
//! ```text
//! bench_check <current.jsonl> <baseline.json> <bench-id> [<bench-id>...]
//! ```
//!
//! The allowed regression defaults to 1.20 (20 % slower than baseline) and
//! can be overridden with `VAEM_BENCH_MAX_REGRESSION`.

use std::process::ExitCode;

/// Extracts the string value following `"key":` on a JSON line.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let colon = rest.find(':')?;
    let rest = &rest[colon + 1..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Extracts the numeric value following `"key":` on a JSON line.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses every `{"id": ..., "mean_ns": ...}` object found in `text`
/// (works for both the JSON-lines run log and the wrapped baseline file,
/// which keeps one result object per line). Later duplicates win, so a
/// re-run appended to the same log supersedes earlier entries.
fn parse_results(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let (Some(id), Some(mean)) = (
            extract_str(line, "\"id\""),
            extract_num(line, "\"mean_ns\""),
        ) else {
            continue;
        };
        if let Some(slot) = out.iter_mut().find(|(existing, _)| *existing == id) {
            slot.1 = mean;
        } else {
            out.push((id, mean));
        }
    }
    out
}

fn lookup(results: &[(String, f64)], id: &str) -> Option<f64> {
    results.iter().find(|(rid, _)| rid == id).map(|(_, m)| *m)
}

/// Outcome of one benchmark-id comparison.
#[derive(Debug, PartialEq)]
enum Verdict {
    Ok {
        now: f64,
        base: f64,
        ratio: f64,
    },
    Regressed {
        now: f64,
        base: f64,
        ratio: f64,
    },
    /// The id is absent from one of the result sets, or a recorded time is
    /// unusable (zero, negative, NaN or infinite) — a corrupt baseline must
    /// fail loudly instead of producing a NaN ratio that passes every
    /// comparison.
    Unusable {
        reason: String,
    },
}

/// Compares one benchmark id between the current run and the baseline.
fn check_id(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    id: &str,
    max_regression: f64,
) -> Verdict {
    let now = match lookup(current, id) {
        Some(v) => v,
        None => {
            return Verdict::Unusable {
                reason: "missing from the current results".to_string(),
            }
        }
    };
    let base = match lookup(baseline, id) {
        Some(v) => v,
        None => {
            return Verdict::Unusable {
                reason: "missing from the baseline".to_string(),
            }
        }
    };
    if !base.is_finite() || base <= 0.0 {
        return Verdict::Unusable {
            reason: format!("baseline time {base} ns is not a positive finite number"),
        };
    }
    if !now.is_finite() || now <= 0.0 {
        return Verdict::Unusable {
            reason: format!("current time {now} ns is not a positive finite number"),
        };
    }
    let ratio = now / base;
    if ratio > max_regression {
        Verdict::Regressed { now, base, ratio }
    } else {
        Verdict::Ok { now, base, ratio }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <current.jsonl> <baseline.json> <bench-id> [<bench-id>...]");
        return ExitCode::FAILURE;
    }
    let max_regression = vaem_parallel::env::positive_f64(
        "VAEM_BENCH_MAX_REGRESSION",
        1.20,
        "using the default 1.20 regression gate",
    );

    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Some(text),
            Err(e) => {
                eprintln!("bench_check: cannot read '{path}': {e}");
                None
            }
        }
    };
    let (Some(current_text), Some(baseline_text)) = (read(&args[0]), read(&args[1])) else {
        return ExitCode::FAILURE;
    };
    let current = parse_results(&current_text);
    let baseline = parse_results(&baseline_text);

    let mut failed = false;
    let mut summary: Vec<String> = Vec::new();
    for id in &args[2..] {
        let (tag, now, base, ratio) = match check_id(&current, &baseline, id, max_regression) {
            Verdict::Unusable { reason } => {
                eprintln!("FAIL {id}: {reason}");
                summary.push(format!("{id} unusable"));
                failed = true;
                continue;
            }
            Verdict::Ok { now, base, ratio } => ("ok", now, base, ratio),
            Verdict::Regressed { now, base, ratio } => {
                failed = true;
                ("FAIL", now, base, ratio)
            }
        };
        println!(
            "{tag:>4} {id}: {:.3} ms vs baseline {:.3} ms (x{ratio:.2}, limit x{max_regression:.2})",
            now / 1e6,
            base / 1e6
        );
        summary.push(format!("{id} {}", speedup_label(ratio)));
    }
    // One grep-able line with the per-key speedup/slowdown ratios vs the
    // baseline (speedup = baseline/current, so >1.00x is an improvement).
    // Names the baseline file so interleaved multi-baseline CI logs stay
    // attributable.
    println!(
        "bench_check summary [{}] vs {}: {}",
        if failed { "FAIL" } else { "ok" },
        baseline_name(&args[1]),
        summary.join(", ")
    );
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders a current/baseline time ratio as a speedup factor
/// (`baseline / current`, so `1.25x` means 25 % faster than the baseline).
fn speedup_label(time_ratio: f64) -> String {
    format!("{:.2}x", 1.0 / time_ratio)
}

/// File name of the baseline path, for the summary line.
fn baseline_name(path: &str) -> &str {
    path.rsplit(['/', '\\']).next().unwrap_or(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_jsonl_and_baseline_styles() {
        let jsonl = "{\"id\": \"a/b\", \"mean_ns\": 1500.5, \"iterations\": 10}\n\
                     {\"id\": \"c/d\", \"mean_ns\": 2e3, \"iterations\": 5}\n\
                     {\"id\": \"a/b\", \"mean_ns\": 1600.0, \"iterations\": 10}\n";
        let results = parse_results(jsonl);
        assert_eq!(results.len(), 2);
        assert_eq!(lookup(&results, "a/b"), Some(1600.0)); // later run wins
        assert_eq!(lookup(&results, "c/d"), Some(2000.0));

        let wrapped = "{\n  \"note\": \"x\",\n  \"results\": [\n    {\"id\": \"a/b\", \"mean_ns\": 10.0, \"iterations\": 1},\n    {\"id\": \"c/d\", \"mean_ns\": 20.0, \"iterations\": 1}\n  ]\n}\n";
        let results = parse_results(wrapped);
        assert_eq!(lookup(&results, "a/b"), Some(10.0));
        assert_eq!(lookup(&results, "c/d"), Some(20.0));
        assert_eq!(lookup(&results, "missing"), None);
    }

    fn set(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn healthy_comparisons_pass_and_regressions_fail() {
        let baseline = set(&[("a", 100.0)]);
        assert_eq!(
            check_id(&set(&[("a", 110.0)]), &baseline, "a", 1.2),
            Verdict::Ok {
                now: 110.0,
                base: 100.0,
                ratio: 1.1
            }
        );
        assert!(matches!(
            check_id(&set(&[("a", 150.0)]), &baseline, "a", 1.2),
            Verdict::Regressed { .. }
        ));
    }

    #[test]
    fn missing_keys_are_clear_errors() {
        let some = set(&[("a", 100.0)]);
        assert!(matches!(
            check_id(&some, &set(&[]), "a", 1.2),
            Verdict::Unusable { reason } if reason.contains("baseline")
        ));
        assert!(matches!(
            check_id(&set(&[]), &some, "a", 1.2),
            Verdict::Unusable { reason } if reason.contains("current")
        ));
    }

    #[test]
    fn speedup_labels_invert_the_time_ratio() {
        assert_eq!(speedup_label(0.5), "2.00x"); // twice as fast as baseline
        assert_eq!(speedup_label(1.0), "1.00x");
        assert_eq!(speedup_label(2.0), "0.50x"); // twice as slow
    }

    #[test]
    fn baseline_names_strip_directories() {
        assert_eq!(baseline_name("BENCH_pr6.json"), "BENCH_pr6.json");
        assert_eq!(baseline_name("/tmp/ci/BENCH_pr6.json"), "BENCH_pr6.json");
        assert_eq!(baseline_name("a\\b\\BENCH_x.json"), "BENCH_x.json");
    }

    #[test]
    fn zero_nan_and_negative_baselines_fail_instead_of_false_passing() {
        // now/0 = inf and now/NaN = NaN; `NaN > limit` is false, so a corrupt
        // baseline used to slip through as a pass. It must be an error.
        let current = set(&[("a", 100.0)]);
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let verdict = check_id(&current, &set(&[("a", bad)]), "a", 1.2);
            assert!(
                matches!(verdict, Verdict::Unusable { .. }),
                "baseline {bad} produced {verdict:?}"
            );
        }
        // A corrupt *current* measurement is just as unusable.
        for bad in [0.0, f64::NAN] {
            let verdict = check_id(&set(&[("a", bad)]), &set(&[("a", 100.0)]), "a", 1.2);
            assert!(matches!(verdict, Verdict::Unusable { .. }));
        }
    }
}
