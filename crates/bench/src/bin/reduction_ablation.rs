//! Ablation for the claims of Section III.C / the text of Section IV:
//!
//! * the wPFA keeps fewer factors than plain PFA at the same captured-energy
//!   threshold (because it spends the budget on the variables that drive the
//!   output), and
//! * the sparse-grid SSCM cost `2d² + 3d + 1` grows quadratically with the
//!   number of retained factors, so the reduction directly controls the
//!   number of deterministic solves.

use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};
use vaem_stochastic::paper_point_count;
use vaem_variation::{Pfa, VariableReduction, Wpfa};

fn main() {
    // Build the Example-A analysis so we get its variation groups and
    // nominal-solution weights through the public API pieces.
    let experiment = MetalPlugExperiment::quick().with_row(TableOneRow::Both);
    let analysis = experiment.analysis();
    let structure = analysis.structure();

    // Roughness covariance over the 32 interface nodes.
    let facet1 = structure.facet("plug1_interface").unwrap();
    let facet2 = structure.facet("plug2_interface").unwrap();
    let mut nodes = facet1.nodes.clone();
    nodes.extend_from_slice(&facet2.nodes);
    let positions: Vec<[f64; 3]> = nodes.iter().map(|&n| structure.mesh.position(n)).collect();
    let cov = vaem_variation::covariance_matrix(
        &positions,
        0.5,
        vaem_variation::CorrelationKernel::Exponential { length: 0.7 },
    );
    // Influence weights: nodes under the driven plug matter most; emulate the
    // nominal-current-density weighting with a distance-based surrogate so the
    // ablation does not need a full solve (the full workflow uses the true
    // nominal solution; see `vaem::VariationalAnalysis`).
    let weights: Vec<f64> = nodes
        .iter()
        .map(|&n| {
            let p = structure.mesh.position(n);
            // Driven plug sits on the low-x side.
            1.0 / (1.0 + p[0])
        })
        .collect();

    println!("== Variable-reduction ablation (32 correlated roughness variables) ==");
    println!();
    println!("energy    PFA kept   wPFA kept   PFA solves   wPFA solves");
    for &energy in &[0.90, 0.95, 0.99, 0.999] {
        let pfa = Pfa::new(&cov, energy).expect("pfa");
        let wpfa = Wpfa::new(&cov, &weights, energy).expect("wpfa");
        println!(
            "{:>6.3}   {:>8}   {:>9}   {:>10}   {:>11}",
            energy,
            pfa.reduced_dim(),
            wpfa.reduced_dim(),
            paper_point_count(pfa.reduced_dim()),
            paper_point_count(wpfa.reduced_dim()),
        );
    }
    println!();
    println!(
        "paper data point: 22 reduced variables -> {} solves (Table I setup)",
        paper_point_count(22)
    );
    println!(
        "paper data point: 34 reduced variables -> {} solves (Table II setup)",
        paper_point_count(34)
    );
    println!();
    println!(
        "collocation cost formula 2d^2+3d+1 vs 10000-run MC breaks even at d = {}",
        (1..200)
            .find(|&d| paper_point_count(d) >= 10_000)
            .unwrap_or(200)
    );
}
