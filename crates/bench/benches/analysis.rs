//! Criterion bench: the full variational-analysis sweep (quick-mode Table I
//! "both variations" row) and its thread scaling.
//!
//! `table1_sweep` runs under the ambient `VAEM_THREADS` (hardware default);
//! the `_t1` / `_t4` variants pin the thread count to measure how the
//! parallel sample-sweep engine scales. On a multi-core host `_t4` should
//! approach the core-count speedup over `_t1`; on a single-core container
//! the two are expected to tie.

use criterion::{criterion_group, criterion_main, Criterion};
use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};

fn sweep() -> usize {
    let result = MetalPlugExperiment::quick()
        .with_row(TableOneRow::Both)
        .with_mc_runs(24)
        .run()
        .expect("quick analysis");
    result.collocation_runs + result.mc_runs
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");
    group.sample_size(2);
    group.bench_function("table1_sweep", |b| b.iter(sweep));
    for threads in [1usize, 4] {
        std::env::set_var("VAEM_THREADS", threads.to_string());
        group.bench_function(format!("table1_sweep_t{threads}"), |b| b.iter(sweep));
    }
    std::env::remove_var("VAEM_THREADS");
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
