//! Criterion bench: the 64-sample stochastic sweep through the
//! cross-sample factorization-reuse path.
//!
//! `sample_sweep_64` runs a doping-variation analysis (64 Monte-Carlo
//! samples plus the SSCM collocation points) on the `tiny` metal-plug mesh,
//! whose DC and AC systems stay below the `Auto` direct-LU threshold: every
//! sample factorizes direct sparse LUs, so the nominal sample's donated
//! symbolic phase (ordering + pivot structure, shared through the
//! `SolverTopology`) is what each worker starts from. `_unseeded` disables
//! the reuse (`SolverOptions::reuse_symbolic = false`) — the ratio between
//! the two is the per-sample cost of the symbolic analysis and pivot
//! discovery that seeding removes. The results of both variants are
//! bit-identical (tier-1 `seeded_sample_sweep_is_bit_identical...` test).
//!
//! `_t1`/`_t2` pin the worker-thread count with `VAEM_CHUNK=1` (maximal
//! work stealing on the ragged Newton costs); on a multi-core host `_t2`
//! should beat `_t1`, on a single-core container they tie.

use criterion::{criterion_group, criterion_main, Criterion};
use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::VariationalAnalysis;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

fn sweep_analysis(reuse_symbolic: bool) -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::tiny());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.mc_runs = 64;
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.solver.reuse_symbolic = reuse_symbolic;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    VariationalAnalysis::new(structure, config)
}

fn run(analysis: &VariationalAnalysis) -> usize {
    let result = analysis.run().expect("sample sweep");
    assert_eq!(
        result.seed_reuse.dc_seeded,
        analysis.config().solver.reuse_symbolic,
        "seed publication must follow the reuse switch"
    );
    result.collocation_runs + result.mc_runs
}

fn bench_sample_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_sweep");
    group.sample_size(2);

    let seeded = sweep_analysis(true);
    group.bench_function("sample_sweep_64", |b| b.iter(|| run(&seeded)));

    let unseeded = sweep_analysis(false);
    group.bench_function("sample_sweep_64_unseeded", |b| b.iter(|| run(&unseeded)));

    for threads in [1usize, 2] {
        std::env::set_var("VAEM_THREADS", threads.to_string());
        std::env::set_var("VAEM_CHUNK", "1");
        group.bench_function(format!("sample_sweep_64_t{threads}"), |b| {
            b.iter(|| run(&seeded))
        });
    }
    std::env::remove_var("VAEM_THREADS");
    std::env::remove_var("VAEM_CHUNK");
    group.finish();
}

criterion_group!(benches, bench_sample_sweep);
criterion_main!(benches);
