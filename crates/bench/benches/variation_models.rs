//! Criterion bench: geometric variation models — the per-sample cost of
//! transferring interface offsets onto the mesh with the traditional vs the
//! continuous-surface (CSV) model, plus the mesh-validity check used by the
//! Fig. 1 reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vaem_mesh::quality::assess;
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_numeric::dense::Cholesky;
use vaem_variation::{
    apply_roughness, covariance_matrix, standard_normal_vector, CorrelationKernel,
    FacetPerturbation, GeometricModel,
};

fn bench_variation(c: &mut Criterion) {
    let structure = build_metalplug_structure(&MetalPlugConfig::default());
    let facet = structure.facet("plug1_interface").unwrap();
    let positions: Vec<[f64; 3]> = facet
        .nodes
        .iter()
        .map(|&n| structure.mesh.position(n))
        .collect();
    let cov = covariance_matrix(
        &positions,
        0.5,
        CorrelationKernel::Exponential { length: 0.7 },
    );
    let chol = Cholesky::new_regularized(&cov).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let offsets = chol.correlate(&standard_normal_vector(&mut rng, facet.nodes.len()));

    let mut group = c.benchmark_group("variation_models");
    group.sample_size(20);

    group.bench_function("traditional_apply", |b| {
        b.iter(|| {
            let mut mesh = structure.mesh.clone();
            apply_roughness(
                &mut mesh,
                GeometricModel::Traditional,
                &[FacetPerturbation::new(facet, offsets.clone())],
            );
            mesh.node_count()
        });
    });

    group.bench_function("continuous_surface_apply", |b| {
        b.iter(|| {
            let mut mesh = structure.mesh.clone();
            apply_roughness(
                &mut mesh,
                GeometricModel::ContinuousSurface,
                &[FacetPerturbation::new(facet, offsets.clone())],
            );
            mesh.node_count()
        });
    });

    group.bench_function("mesh_validity_check", |b| {
        let mut mesh = structure.mesh.clone();
        apply_roughness(
            &mut mesh,
            GeometricModel::ContinuousSurface,
            &[FacetPerturbation::new(facet, offsets.clone())],
        );
        b.iter(|| assess(&mesh, 1e-9).crossing_count);
    });

    group.finish();
}

criterion_group!(benches, bench_variation);
criterion_main!(benches);
