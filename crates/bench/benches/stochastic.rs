//! Criterion bench: stochastic machinery — collocation-grid generation,
//! chaos fitting and the wPFA/PFA reductions at paper-scale dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaem_stochastic::{CollocationGrid, HermiteBasis, PolynomialChaos, SparseCollocation};
use vaem_variation::{covariance_matrix, CorrelationKernel, Pfa, VariableReduction, Wpfa};

fn bench_stochastic(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic");
    group.sample_size(10);

    // Collocation grid generation at the paper's dimensions (22 and 34).
    for &dim in &[22usize, 34] {
        group.bench_with_input(BenchmarkId::new("collocation_grid", dim), &dim, |b, &d| {
            b.iter(|| CollocationGrid::level2(d).len());
        });
    }

    // Quadratic chaos fit for d = 10 reduced variables.
    group.bench_function("pce_fit_d10", |b| {
        let sscm = SparseCollocation::new(10);
        let values: Vec<f64> = sscm
            .points()
            .iter()
            .map(|z| 1.0 + z.iter().sum::<f64>() + z[0] * z[1])
            .collect();
        let points = sscm.points().to_vec();
        b.iter(|| PolynomialChaos::fit(HermiteBasis::new(10, 2), &points, &values).expect("fit"));
    });

    // PFA vs wPFA on a 128-variable covariance (the Table-II doping group).
    let positions: Vec<[f64; 3]> = (0..128)
        .map(|i| [(i % 16) as f64 * 0.6, (i / 16) as f64 * 0.6, 0.0])
        .collect();
    let cov = covariance_matrix(
        &positions,
        0.1,
        CorrelationKernel::Exponential { length: 0.5 },
    );
    let weights: Vec<f64> = (0..128).map(|i| 1.0 / (1.0 + (i % 16) as f64)).collect();
    group.bench_function("pfa_128", |b| {
        b.iter(|| Pfa::new(&cov, 0.95).expect("pfa").reduced_dim());
    });
    group.bench_function("wpfa_128", |b| {
        b.iter(|| Wpfa::new(&cov, &weights, 0.95).expect("wpfa").reduced_dim());
    });

    group.finish();
}

criterion_group!(benches, bench_stochastic);
criterion_main!(benches);
