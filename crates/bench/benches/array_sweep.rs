//! Criterion bench: the TSV-array nominal coupling extraction at 2×2 and
//! 3×3 — the first workload whose AC systems are large enough to pressure
//! the direct-LU wall (ROADMAP item 2).
//!
//! Each iteration solves the DC operating point, extracts the full K×K
//! coupling-capacitance matrix through one shared AC factorization, and
//! runs the aggressor/victim frequency sweep — the deterministic path of
//! the `tsv_array` binary, with the stochastic stage excluded so the
//! timings isolate the per-mesh solver cost from sampling noise.

use criterion::{criterion_group, criterion_main, Criterion};
use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem_mesh::structures::tsv_array::TsvArrayConfig;

fn nominal(experiment: &TsvArrayExperiment) -> f64 {
    let report = experiment.nominal_report().expect("nominal array report");
    assert!(
        report.reciprocity_defect() < 0.05,
        "coupling matrix lost reciprocity"
    );
    report.coupling[0][0]
}

fn bench_array_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_sweep");
    group.sample_size(2);

    let quick = TsvArrayExperiment::quick();
    group.bench_function("array_sweep_2x2", |b| b.iter(|| nominal(&quick)));

    let mut three = TsvArrayExperiment::quick();
    three.geometry = TsvArrayConfig::coarse(3, 3);
    three.aggressor = (1, 1);
    group.bench_function("array_sweep_3x3", |b| b.iter(|| nominal(&three)));

    group.finish();
}

criterion_group!(benches, bench_array_sweep);
criterion_main!(benches);
