//! Criterion bench: the TSV-array nominal coupling extraction at 2×2,
//! 3×3 and 4×4 — the workloads whose AC systems are large enough to
//! pressure the direct-LU wall (ROADMAP item 2). Larger grids (e.g. 5×5)
//! can be requested with `VAEM_ARRAY_ROWS`/`VAEM_ARRAY_COLS`, which add
//! one extra `array_sweep_{rows}x{cols}` entry.
//!
//! Each iteration solves the DC operating point, extracts the full K×K
//! coupling-capacitance matrix through one shared AC factorization, and
//! runs the aggressor/victim frequency sweep — the deterministic path of
//! the `tsv_array` binary, with the stochastic stage excluded so the
//! timings isolate the per-mesh solver cost from sampling noise.

use criterion::{criterion_group, criterion_main, Criterion};
use vaem::experiments::tsv_array::TsvArrayExperiment;
use vaem_mesh::structures::tsv_array::TsvArrayConfig;

fn nominal(experiment: &TsvArrayExperiment) -> f64 {
    let report = experiment.nominal_report().expect("nominal array report");
    assert!(
        report.reciprocity_defect() < 0.05,
        "coupling matrix lost reciprocity"
    );
    report.coupling[0][0]
}

/// A quick-mode experiment on an `rows`×`cols` coarse grid with the
/// aggressor pinned near the grid center, so every victim via has a
/// non-trivial coupling path.
fn grid_experiment(rows: usize, cols: usize) -> TsvArrayExperiment {
    let mut experiment = TsvArrayExperiment::quick();
    experiment.geometry = TsvArrayConfig::coarse(rows, cols);
    experiment.aggressor = (rows / 2, cols / 2);
    experiment
}

fn bench_array_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("array_sweep");
    group.sample_size(2);

    let quick = TsvArrayExperiment::quick();
    group.bench_function("array_sweep_2x2", |b| b.iter(|| nominal(&quick)));

    for dims in [(3usize, 3usize), (4, 4)] {
        let experiment = grid_experiment(dims.0, dims.1);
        group.bench_function(format!("array_sweep_{}x{}", dims.0, dims.1), |b| {
            b.iter(|| nominal(&experiment))
        });
    }

    // Optional extra size (5×5 and beyond) via the same environment knobs
    // the `tsv_array` binary honours. Defaults of 0 mean "not requested".
    let (rows, cols) = vaem_bench::array_dims(0, 0);
    let builtin = [(2, 2), (3, 3), (4, 4)];
    if rows >= 2 && cols >= 2 && !builtin.contains(&(rows, cols)) {
        let experiment = grid_experiment(rows, cols);
        group.bench_function(format!("array_sweep_{rows}x{cols}"), |b| {
            b.iter(|| nominal(&experiment))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_array_sweep);
criterion_main!(benches);
