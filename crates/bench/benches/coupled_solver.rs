//! Criterion bench: the deterministic coupled solver stages on the
//! metal-plug structure (DC Newton, AC electro-quasi-static solve, AC
//! full-wave solve) — the per-sample cost that dominates both SSCM and MC.

use criterion::{criterion_group, criterion_main, Criterion};
use vaem_fvm::{CoupledSolver, EmMode, SolverOptions};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_physics::DopingProfile;

fn bench_coupled(c: &mut Criterion) {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);

    let mut group = c.benchmark_group("coupled_solver");
    group.sample_size(10);

    group.bench_function("dc_newton", |b| {
        let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
        b.iter(|| solver.solve_dc().expect("dc"));
    });

    group.bench_function("ac_quasi_static_1ghz", |b| {
        let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        b.iter(|| solver.solve_ac(&dc, "plug1", 1.0e9).expect("ac"));
    });

    group.bench_function("ac_full_wave_1ghz", |b| {
        let options = SolverOptions {
            em_mode: EmMode::FullWave,
            ..SolverOptions::default()
        };
        let solver = CoupledSolver::new(&structure, &doping, options).unwrap();
        let dc = solver.solve_dc().unwrap();
        b.iter(|| solver.solve_ac(&dc, "plug1", 1.0e9).expect("ac"));
    });

    group.finish();
}

criterion_group!(benches, bench_coupled);
criterion_main!(benches);
