//! Criterion bench: the 64-point AC frequency sweep.
//!
//! `ac_sweep_64` measures the sweep-aware operator on one deterministic
//! solver: one assembly + one symbolic factorization for the whole grid,
//! then a numeric refactorization and a warm-started solve per point. The
//! acceptance target is "well under 64× the single-point
//! `coupled_solver/ac_quasi_static_1ghz` time".
//!
//! `ac_sweep_64_t{1,4}` run the core-level swept-frequency experiment (every
//! collocation sample sweeps the grid) pinned to 1 and 4 worker threads; on
//! a multi-core host `_t4` should approach the core-count speedup, while on
//! a single-core container the two tie (the spectra are bit-identical at
//! any thread count either way).

use criterion::{criterion_group, criterion_main, Criterion};
use vaem::config::{AnalysisConfig, DopingVariationConfig, QuantitySet, VariationSpec};
use vaem::{AdaptiveSweepOptions, VariationalAnalysis};
use vaem_bench::log_grid;
use vaem_fvm::{CoupledSolver, SolverOptions};
use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem_physics::DopingProfile;

/// A deliberately small doping-only analysis so the thread-scaling variants
/// measure the sweep engine, not the reduction machinery.
fn sweep_analysis() -> VariationalAnalysis {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let mut config = AnalysisConfig::new(QuantitySet::InterfaceCurrent {
        terminal: "plug1".to_string(),
    });
    config.energy_fraction = 0.9;
    config.max_reduced_per_group = 2;
    config.variations = VariationSpec {
        roughness: None,
        doping: Some(DopingVariationConfig {
            max_nodes: 10,
            ..DopingVariationConfig::paper_default()
        }),
        via_params: None,
    };
    VariationalAnalysis::new(structure, config)
}

/// [`sweep_analysis`] on lightly doped silicon: the conduction→displacement
/// transition lands inside [0.1, 10] GHz, so the spectrum has a knee for
/// the adaptive refinement to chase (the nominal doping of the quick
/// experiment leaves it flat and the adaptive sweep trivially keeps the
/// coarse grid).
fn curved_sweep_analysis() -> VariationalAnalysis {
    let analysis = sweep_analysis();
    let mut config = analysis.config().clone();
    config.nominal_donor = 2.0e1;
    VariationalAnalysis::new(analysis.structure().clone(), config)
}

fn bench_ac_sweep(c: &mut Criterion) {
    let structure = build_metalplug_structure(&MetalPlugConfig::coarse());
    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);
    let frequencies = log_grid(64, 1.0e8, 1.0e10);

    let mut group = c.benchmark_group("ac_sweep");
    group.sample_size(10);

    group.bench_function("ac_sweep_64", |b| {
        let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default()).unwrap();
        let dc = solver.solve_dc().unwrap();
        b.iter(|| {
            let mut operator = solver.prepare_ac_sweep(&dc).expect("prepare");
            operator
                .sweep_terminal(&frequencies, "plug1")
                .expect("sweep")
                .len()
        });
    });

    group.sample_size(2);
    for threads in [1usize, 4] {
        std::env::set_var("VAEM_THREADS", threads.to_string());
        group.bench_function(format!("ac_sweep_64_t{threads}"), |b| {
            let analysis = sweep_analysis();
            b.iter(|| {
                analysis
                    .run_frequency_sweep(&frequencies)
                    .expect("sweep analysis")
                    .collocation_runs
            });
        });
    }

    // Adaptive vs dense on the curved (lightly doped) spectrum, pinned to
    // one worker so the recording is stable on single-CPU runners:
    // `ac_sweep_adaptive` starts from a 9-point coarse grid and refines
    // under a 6 % tolerance; `ac_sweep_adaptive_dense64` is the fixed
    // 64-point reference on the same analysis. The point budget sits above
    // the dense count, so the >=2x solve saving asserted inside the bench
    // is earned by indicator convergence (28 points measured), never by
    // the cap clamping the grid.
    std::env::set_var("VAEM_THREADS", "1");
    let coarse = log_grid(9, 1.0e8, 1.0e10);
    let options = AdaptiveSweepOptions {
        rel_tolerance: 0.06,
        max_points: 96,
        max_depth: 6,
    };
    group.bench_function("ac_sweep_adaptive", |b| {
        let analysis = curved_sweep_analysis();
        b.iter(|| {
            let result = analysis
                .run_adaptive_frequency_sweep(&coarse, &options)
                .expect("adaptive sweep");
            assert!(
                !result.budget_exhausted,
                "the solve-count comparison is meaningless if the budget clamped the grid"
            );
            assert!(
                2 * result.ac_solve_count() <= (result.sweep.collocation_runs + 1) * 64,
                "adaptive sweep lost its >=2x solve advantage: {} points",
                result.sweep.frequencies.len()
            );
            result.ac_solve_count()
        });
    });
    group.bench_function("ac_sweep_adaptive_dense64", |b| {
        let analysis = curved_sweep_analysis();
        b.iter(|| {
            analysis
                .run_frequency_sweep(&frequencies)
                .expect("dense reference sweep")
                .ac_solve_count()
        });
    });
    std::env::remove_var("VAEM_THREADS");
    group.finish();
}

criterion_group!(benches, bench_ac_sweep);
criterion_main!(benches);
