//! Criterion bench: sparse linear solvers on an FVM-like complex system
//! (design-choice ablation: direct LU vs ILU(0)-preconditioned Krylov).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaem_numeric::Complex64;
use vaem_sparse::{CsrMatrix, LinearSolver, SolverKind};

/// 3-D Laplacian-like complex matrix with metal/dielectric contrast.
fn fvm_like_matrix(n_side: usize) -> CsrMatrix<Complex64> {
    let n = n_side * n_side * n_side;
    let idx = |i: usize, j: usize, k: usize| i + n_side * (j + n_side * k);
    let mut t = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                let me = idx(i, j, k);
                let sigma = if (i + j + k) % 9 == 0 { 58.0 } else { 1e-6 };
                let diag = Complex64::new(6.0 * sigma, 1e-7);
                t.push((me, me, diag));
                let mut push = |other: usize| {
                    t.push((me, other, Complex64::new(-sigma, -1e-8)));
                };
                if i > 0 {
                    push(idx(i - 1, j, k));
                }
                if i + 1 < n_side {
                    push(idx(i + 1, j, k));
                }
                if j > 0 {
                    push(idx(i, j - 1, k));
                }
                if j + 1 < n_side {
                    push(idx(i, j + 1, k));
                }
                if k > 0 {
                    push(idx(i, j, k - 1));
                }
                if k + 1 < n_side {
                    push(idx(i, j, k + 1));
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &t)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_solvers");
    group.sample_size(10);
    for &n_side in &[8usize, 12] {
        let a = fvm_like_matrix(n_side);
        let b = vec![Complex64::ONE; a.rows()];
        for kind in [SolverKind::DirectLu, SolverKind::IluBiCgStab] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), a.rows()),
                &(&a, &b),
                |bench, (a, b)| {
                    let solver = LinearSolver::new(kind);
                    bench.iter(|| solver.solve(a, b).expect("solve"));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
