//! Criterion bench: sparse linear solvers on an FVM-like complex system
//! (design-choice ablation: direct LU vs ILU(0)-preconditioned Krylov).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vaem_numeric::Complex64;
use vaem_sparse::{CsrMatrix, LinearSolver, SolverKind, SparsityPattern, SymbolicLu};

/// 3-D Laplacian-like complex matrix with metal/dielectric contrast.
fn fvm_like_matrix(n_side: usize) -> CsrMatrix<Complex64> {
    let n = n_side * n_side * n_side;
    let idx = |i: usize, j: usize, k: usize| i + n_side * (j + n_side * k);
    let mut t = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..n_side {
                let me = idx(i, j, k);
                let sigma = if (i + j + k) % 9 == 0 { 58.0 } else { 1e-6 };
                let diag = Complex64::new(6.0 * sigma, 1e-7);
                t.push((me, me, diag));
                let mut push = |other: usize| {
                    t.push((me, other, Complex64::new(-sigma, -1e-8)));
                };
                if i > 0 {
                    push(idx(i - 1, j, k));
                }
                if i + 1 < n_side {
                    push(idx(i + 1, j, k));
                }
                if j > 0 {
                    push(idx(i, j - 1, k));
                }
                if j + 1 < n_side {
                    push(idx(i, j + 1, k));
                }
                if k > 0 {
                    push(idx(i, j, k - 1));
                }
                if k + 1 < n_side {
                    push(idx(i, j, k + 1));
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &t)
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_solvers");
    group.sample_size(10);
    for &n_side in &[8usize, 12] {
        let a = fvm_like_matrix(n_side);
        let b = vec![Complex64::ONE; a.rows()];
        for kind in [SolverKind::DirectLu, SolverKind::IluBiCgStab] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), a.rows()),
                &(&a, &b),
                |bench, (a, b)| {
                    let solver = LinearSolver::new(kind);
                    bench.iter(|| solver.solve(a, b).expect("solve"));
                },
            );
        }
    }
    group.finish();
}

/// An AC-like slab system: `n_side × n_side` laterally, `layers` cells
/// deep (the aspect ratio of the TSV structure meshes), with the shifted
/// lossy-Helmholtz character of the coupled A–V equations at frequency —
/// the wave term makes the real part indefinite, which is what defeats
/// ILU(0)-preconditioned Krylov on the per-frequency systems and made the
/// direct path worth seeding in the first place. The DC diffusion systems
/// are the easy case for Krylov; the threshold exists for these.
fn ac_like_slab_matrix(n_side: usize, layers: usize) -> CsrMatrix<Complex64> {
    let n = n_side * n_side * layers;
    let idx = |i: usize, j: usize, k: usize| i + n_side * (j + n_side * k);
    // Wave-number shift toward the low Laplacian eigenvalues (nearly
    // indefinite real part) plus a small conductive loss: convergent, but
    // the ILU(0)-preconditioned Krylov iteration count grows with the
    // grid instead of staying flat as it does on diffusion systems.
    let diag = Complex64::new(6.0 - 1.0, 0.05);
    let off = Complex64::new(-1.0, 0.0);
    let mut t = Vec::new();
    for i in 0..n_side {
        for j in 0..n_side {
            for k in 0..layers {
                let me = idx(i, j, k);
                t.push((me, me, diag));
                let mut push = |other: usize| {
                    t.push((me, other, off));
                };
                if i > 0 {
                    push(idx(i - 1, j, k));
                }
                if i + 1 < n_side {
                    push(idx(i + 1, j, k));
                }
                if j > 0 {
                    push(idx(i, j - 1, k));
                }
                if j + 1 < n_side {
                    push(idx(i, j + 1, k));
                }
                if k > 0 {
                    push(idx(i, j, k - 1));
                }
                if k + 1 < layers {
                    push(idx(i, j, k + 1));
                }
            }
        }
    }
    CsrMatrix::from_triplets(n, n, &t)
}

/// The seeded-direct crossover: once a donor `SymbolicLu` exists for a
/// pattern, a sample pays only the numeric refactorization plus two
/// triangular solves, while the iterative route still pays a cold ILU(0)
/// build before BiCGSTAB can start. This group measures both per-sample
/// costs across sizes on the slab family so `LinearSolver`'s
/// `seeded_direct_threshold` default is set from data rather than carried
/// over from the cold `direct_threshold`: the size where `ColdIlu` first
/// beats `SeededRefactor` is where `Auto` should hand a seeded system
/// back to the iterative path.
fn bench_seeded_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("seeded_crossover");
    group.sample_size(10);
    for &n_side in &[16usize, 24, 32, 40] {
        let a = ac_like_slab_matrix(n_side, 4);
        let b = vec![Complex64::ONE; a.rows()];

        // The donor factorization happens once per pattern (the nominal
        // sample); its cost is excluded, exactly as in the seeded path.
        let donor = {
            let mut donor = SymbolicLu::new(&SparsityPattern::of(&a)).expect("symbolic");
            donor.factor(&a).expect("donor factorization");
            donor
        };
        group.bench_with_input(
            BenchmarkId::new("SeededRefactor", a.rows()),
            &(&a, &b, &donor),
            |bench, (a, b, donor)| {
                bench.iter(|| {
                    let mut handle = donor.seed_from();
                    let lu = handle.factor(a).expect("seeded refactorization");
                    lu.solve(b).expect("triangular solve")
                });
            },
        );

        // What the same sample costs if `Auto` abandons the seeded direct
        // path: a cold ILU(0) build, BiCGSTAB, and — on these systems —
        // the GMRES and direct-LU rescues once the iteration stagnates.
        group.bench_with_input(
            BenchmarkId::new("ColdAuto", a.rows()),
            &(&a, &b),
            |bench, (a, b)| {
                let solver = LinearSolver::new(SolverKind::Auto);
                bench.iter(|| solver.solve(a, b).expect("cold auto solve"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_seeded_crossover);
criterion_main!(benches);
