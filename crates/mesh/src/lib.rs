//! Structured Cartesian FVM meshes, materials and geometry builders for the
//! VAEM coupled solver.
//!
//! The paper's finite volume discretization "meshes the structure into cubes"
//! and assigns scalar unknowns to the nodes and the vector potential to the
//! links of the grid; process variations then perturb the node coordinates so
//! the cubes become irregular. This crate provides:
//!
//! * [`CartesianMesh`] — a logically structured grid with *per-node*
//!   coordinates (so geometric perturbations are first-class), links, dual
//!   areas and node (dual) volumes.
//! * [`Material`] / [`MaterialMap`] — metal / insulator / semiconductor node
//!   tagging.
//! * [`StructureBuilder`] — box-based geometry description producing a
//!   [`Structure`] (mesh + materials + contacts + rough facets).
//! * [`structures`] — the two test structures of the paper: the
//!   metal-plug-on-silicon example (Fig. 2a) and the two-TSV structure
//!   (Fig. 3).
//! * [`quality`] — mesh validity checks used to reproduce Fig. 1 (traditional
//!   vs. smart geometric variation model).
//!
//! # Example
//!
//! ```
//! use vaem_mesh::structures::metalplug::{MetalPlugConfig, build_metalplug_structure};
//!
//! let structure = build_metalplug_structure(&MetalPlugConfig::default());
//! assert!(structure.mesh.node_count() > 500);
//! assert!(structure.contact("plug1").is_some());
//! assert!(!structure.rough_facets.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cartesian;
mod error;
mod geometry;
mod index;
mod material;
pub mod perturb;
pub mod quality;
pub mod structures;

pub use cartesian::{CartesianMesh, Link};
pub use error::MeshError;
pub use geometry::{BoxRegion, Contact, Facet, FacetSide, Structure, StructureBuilder};
pub use index::{Axis, GridIndex, LinkId, NodeId};
pub use material::{Material, MaterialMap};
