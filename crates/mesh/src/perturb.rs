//! Low-level geometric perturbation helpers.
//!
//! The variation models (traditional node perturbation and the paper's
//! continuous-surface "smart" model) live in the `vaem-variation` crate; this
//! module provides the mesh-side primitives they need: applying per-node
//! offsets along an axis and walking grid columns.

use crate::{Axis, CartesianMesh, GridIndex, NodeId};

/// Applies per-node coordinate offsets along `axis`.
///
/// Every pair `(node, delta)` moves `node` by `delta` µm along the axis.
///
/// # Panics
/// Panics if a node id is out of range for the mesh.
pub fn apply_offsets(mesh: &mut CartesianMesh, axis: Axis, offsets: &[(NodeId, f64)]) {
    for &(node, delta) in offsets {
        mesh.displace(node, axis, delta);
    }
}

/// Returns the whole grid column passing through `node` along `axis`,
/// ordered by increasing grid index (from the domain boundary on the
/// negative side to the boundary on the positive side).
pub fn column_through(mesh: &CartesianMesh, node: NodeId, axis: Axis) -> Vec<NodeId> {
    let g = mesh.grid_index(node);
    let (nx, ny, nz) = mesh.dims();
    let len = match axis {
        Axis::X => nx,
        Axis::Y => ny,
        Axis::Z => nz,
    };
    (0..len)
        .map(|s| {
            let idx = match axis {
                Axis::X => GridIndex::new(s, g.j, g.k),
                Axis::Y => GridIndex::new(g.i, s, g.k),
                Axis::Z => GridIndex::new(g.i, g.j, s),
            };
            mesh.node_at(idx)
        })
        .collect()
}

/// Splits a column at `node`: returns `(before, after)` where `before` holds
/// the nodes on the negative side of `node` (closest first) and `after` the
/// nodes on the positive side (closest first). `node` itself is excluded.
pub fn column_sides(mesh: &CartesianMesh, node: NodeId, axis: Axis) -> (Vec<NodeId>, Vec<NodeId>) {
    let column = column_through(mesh, node, axis);
    let pos = column
        .iter()
        .position(|&n| n == node)
        .expect("node must lie on its own column");
    let mut before: Vec<NodeId> = column[..pos].to_vec();
    before.reverse();
    let after: Vec<NodeId> = column[pos + 1..].to_vec();
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh3() -> CartesianMesh {
        let lines: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0];
        CartesianMesh::from_grid_lines(lines.clone(), lines.clone(), lines)
    }

    #[test]
    fn offsets_move_nodes() {
        let mut m = mesh3();
        let n = m.node_at(GridIndex::new(1, 1, 1));
        apply_offsets(&mut m, Axis::Y, &[(n, 0.25)]);
        assert!((m.position(n)[1] - 1.25).abs() < 1e-12);
    }

    #[test]
    fn column_has_full_length_and_contains_node() {
        let m = mesh3();
        let n = m.node_at(GridIndex::new(2, 1, 3));
        let col = column_through(&m, n, Axis::X);
        assert_eq!(col.len(), 4);
        assert!(col.contains(&n));
        // Ordered by increasing x.
        let xs: Vec<f64> = col.iter().map(|&c| m.position(c)[0]).collect();
        assert!(xs.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn column_sides_split_correctly() {
        let m = mesh3();
        let n = m.node_at(GridIndex::new(1, 2, 0));
        let (before, after) = column_sides(&m, n, Axis::X);
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 2);
        // "before" is ordered closest-first.
        assert_eq!(m.grid_index(before[0]).i, 0);
        assert_eq!(m.grid_index(after[0]).i, 2);
        assert_eq!(m.grid_index(after[1]).i, 3);
    }
}
