//! Box-based structure description and the resulting [`Structure`].

use crate::{Axis, CartesianMesh, Material, MaterialMap, NodeId};
use std::collections::BTreeSet;

/// An axis-aligned box assigning a material to every node it contains.
///
/// Boxes are applied in insertion order, later boxes override earlier ones —
/// a convenient way to carve plugs/TSVs out of a background.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxRegion {
    /// Minimum corner (µm).
    pub min: [f64; 3],
    /// Maximum corner (µm).
    pub max: [f64; 3],
    /// Material assigned to nodes inside the box (inclusive of its faces).
    pub material: Material,
}

impl BoxRegion {
    /// Creates a box region.
    pub fn new(min: [f64; 3], max: [f64; 3], material: Material) -> Self {
        Self { min, max, material }
    }

    /// Returns `true` if `p` lies inside the box (inclusive, with a small
    /// geometric tolerance so nodes exactly on a face are captured).
    pub fn contains(&self, p: [f64; 3]) -> bool {
        const TOL: f64 = 1e-9;
        (0..3).all(|d| p[d] >= self.min[d] - TOL && p[d] <= self.max[d] + TOL)
    }
}

/// A named set of nodes where a potential (Dirichlet) boundary condition is
/// applied — a metal terminal of the structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contact {
    /// Terminal name (e.g. `"tsv1"`, `"plug2"`, `"ground"`).
    pub name: String,
    /// Nodes belonging to the terminal.
    pub nodes: Vec<NodeId>,
}

/// Which side of a facet the *interior* of the perturbed region lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FacetSide {
    /// Interior lies at lower coordinates than the facet.
    Negative,
    /// Interior lies at higher coordinates than the facet.
    Positive,
}

/// A planar material-interface facet subject to surface roughness.
///
/// The paper perturbs the nodes on the lateral walls of plugs/TSVs along the
/// facet normal; each facet groups the correlated nodes of one wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Facet {
    /// Human-readable name (e.g. `"tsv1+x"`).
    pub name: String,
    /// Axis normal to the facet (the perturbation direction).
    pub normal: Axis,
    /// Side of the facet occupied by the region interior.
    pub interior_side: FacetSide,
    /// Interface nodes lying on the facet.
    pub nodes: Vec<NodeId>,
}

/// A meshed structure: geometry, materials, terminals and rough facets.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    /// The FVM mesh (nominal geometry).
    pub mesh: CartesianMesh,
    /// Per-node material assignment.
    pub materials: MaterialMap,
    /// Electrical terminals.
    pub contacts: Vec<Contact>,
    /// Material-interface facets subject to surface roughness.
    pub rough_facets: Vec<Facet>,
}

impl Structure {
    /// Looks up a contact by name.
    pub fn contact(&self, name: &str) -> Option<&Contact> {
        self.contacts.iter().find(|c| c.name == name)
    }

    /// Looks up a rough facet by name.
    pub fn facet(&self, name: &str) -> Option<&Facet> {
        self.rough_facets.iter().find(|f| f.name == name)
    }

    /// All semiconductor nodes (doping-variation candidates).
    pub fn semiconductor_nodes(&self) -> Vec<NodeId> {
        self.materials.nodes_of(Material::Semiconductor)
    }

    /// Nodes that belong to any contact.
    pub fn contact_nodes(&self) -> BTreeSet<NodeId> {
        self.contacts
            .iter()
            .flat_map(|c| c.nodes.iter().copied())
            .collect()
    }
}

/// Builder assembling a [`Structure`] from boxes, contacts and facets.
///
/// # Example
/// ```
/// use vaem_mesh::{Axis, BoxRegion, Material, StructureBuilder};
///
/// let structure = StructureBuilder::new(Material::Insulator)
///     .with_max_spacing(1.0)
///     .add_box(BoxRegion::new([0.0, 0.0, 0.0], [4.0, 4.0, 2.0], Material::Semiconductor))
///     .add_box(BoxRegion::new([1.0, 1.0, 2.0], [3.0, 3.0, 4.0], Material::Metal))
///     .add_contact_box("plug", [1.0, 1.0, 4.0], [3.0, 3.0, 4.0])
///     .add_rough_facet("plug+x", Axis::X, 3.0, [1.0, 2.0], [2.0, 4.0])
///     .build();
/// assert!(structure.mesh.node_count() > 0);
/// assert!(structure.contact("plug").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    background: Material,
    boxes: Vec<BoxRegion>,
    contacts: Vec<(String, [f64; 3], [f64; 3])>,
    facets: Vec<FacetSpec>,
    extra_lines: [Vec<f64>; 3],
    max_spacing: f64,
}

#[derive(Debug, Clone)]
struct FacetSpec {
    name: String,
    normal: Axis,
    plane: f64,
    /// In-plane bounds: (min, max) for the two perpendicular axes in
    /// `Axis::perpendicular` order.
    span: [[f64; 2]; 2],
    interior_side: FacetSide,
}

impl StructureBuilder {
    /// Creates a builder with the given background material.
    pub fn new(background: Material) -> Self {
        Self {
            background,
            boxes: Vec::new(),
            contacts: Vec::new(),
            facets: Vec::new(),
            extra_lines: [Vec::new(), Vec::new(), Vec::new()],
            max_spacing: 1.0,
        }
    }

    /// Sets the maximum grid spacing (µm) used when generating grid lines.
    pub fn with_max_spacing(mut self, spacing: f64) -> Self {
        assert!(spacing > 0.0, "max spacing must be positive");
        self.max_spacing = spacing;
        self
    }

    /// Adds a material box (later boxes override earlier ones).
    pub fn add_box(mut self, region: BoxRegion) -> Self {
        self.boxes.push(region);
        self
    }

    /// Adds an explicit grid line on the given axis.
    pub fn add_grid_line(mut self, axis: Axis, value: f64) -> Self {
        self.extra_lines[axis.as_usize()].push(value);
        self
    }

    /// Declares a contact as all nodes inside the given box.
    pub fn add_contact_box(mut self, name: &str, min: [f64; 3], max: [f64; 3]) -> Self {
        self.contacts.push((name.to_string(), min, max));
        self
    }

    /// Declares a rough facet: the plane `normal = plane` restricted to the
    /// in-plane rectangle spanned by `span_a` (first perpendicular axis) and
    /// `span_b` (second perpendicular axis). `interior_side` is derived from
    /// whether the interior box center lies below or above the plane when the
    /// facet is added with [`StructureBuilder::add_rough_facet_with_side`];
    /// this convenience method assumes the interior is on the negative side.
    pub fn add_rough_facet(
        self,
        name: &str,
        normal: Axis,
        plane: f64,
        span_a: [f64; 2],
        span_b: [f64; 2],
    ) -> Self {
        self.add_rough_facet_with_side(name, normal, plane, span_a, span_b, FacetSide::Negative)
    }

    /// Declares a rough facet and explicitly states on which side of it the
    /// region interior lies.
    pub fn add_rough_facet_with_side(
        mut self,
        name: &str,
        normal: Axis,
        plane: f64,
        span_a: [f64; 2],
        span_b: [f64; 2],
        interior_side: FacetSide,
    ) -> Self {
        self.facets.push(FacetSpec {
            name: name.to_string(),
            normal,
            plane,
            span: [span_a, span_b],
            interior_side,
        });
        self
    }

    /// Generates the grid lines for one axis from the box boundaries, the
    /// explicit lines and the maximum spacing.
    fn grid_lines(&self, axis: Axis) -> Vec<f64> {
        let d = axis.as_usize();
        let mut breaks: Vec<f64> = Vec::new();
        for b in &self.boxes {
            breaks.push(b.min[d]);
            breaks.push(b.max[d]);
        }
        for f in &self.facets {
            if f.normal == axis {
                breaks.push(f.plane);
            }
        }
        breaks.extend_from_slice(&self.extra_lines[d]);
        breaks.sort_by(|a, b| a.partial_cmp(b).expect("grid line is NaN"));
        breaks.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            breaks.len() >= 2,
            "structure needs at least two distinct {axis} boundaries"
        );
        // Refine every interval down to the maximum spacing.
        let mut lines = Vec::new();
        for w in breaks.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let n = ((hi - lo) / self.max_spacing).ceil().max(1.0) as usize;
            for s in 0..n {
                lines.push(lo + (hi - lo) * s as f64 / n as f64);
            }
        }
        lines.push(*breaks.last().expect("non-empty breaks"));
        lines
    }

    /// Builds the mesh, assigns materials, resolves contacts and facets.
    ///
    /// # Panics
    /// Panics if the description contains fewer than two distinct boundaries
    /// along any axis (nothing to mesh).
    pub fn build(self) -> Structure {
        let xs = self.grid_lines(Axis::X);
        let ys = self.grid_lines(Axis::Y);
        let zs = self.grid_lines(Axis::Z);
        let mesh = CartesianMesh::from_grid_lines(xs, ys, zs);

        // Materials: background then boxes in order.
        let mut materials = MaterialMap::new(mesh.node_count(), self.background);
        for node in mesh.node_ids() {
            let p = mesh.position(node);
            for b in &self.boxes {
                if b.contains(p) {
                    materials.set(node, b.material);
                }
            }
        }

        // Contacts.
        let contacts = self
            .contacts
            .iter()
            .map(|(name, min, max)| {
                let probe = BoxRegion::new(*min, *max, Material::Metal);
                let nodes: Vec<NodeId> = mesh
                    .node_ids()
                    .filter(|&n| probe.contains(mesh.position(n)))
                    .collect();
                Contact {
                    name: name.clone(),
                    nodes,
                }
            })
            .collect();

        // Facets.
        const TOL: f64 = 1e-9;
        let rough_facets = self
            .facets
            .iter()
            .map(|spec| {
                let [pa, pb] = spec.normal.perpendicular();
                let nodes: Vec<NodeId> = mesh
                    .node_ids()
                    .filter(|&n| {
                        let p = mesh.position(n);
                        (p[spec.normal.as_usize()] - spec.plane).abs() < TOL
                            && p[pa.as_usize()] >= spec.span[0][0] - TOL
                            && p[pa.as_usize()] <= spec.span[0][1] + TOL
                            && p[pb.as_usize()] >= spec.span[1][0] - TOL
                            && p[pb.as_usize()] <= spec.span[1][1] + TOL
                    })
                    .collect();
                Facet {
                    name: spec.name.clone(),
                    normal: spec.normal,
                    interior_side: spec.interior_side,
                    nodes,
                }
            })
            .collect();

        Structure {
            mesh,
            materials,
            contacts,
            rough_facets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_structure() -> Structure {
        StructureBuilder::new(Material::Insulator)
            .with_max_spacing(1.0)
            .add_box(BoxRegion::new(
                [0.0, 0.0, 0.0],
                [4.0, 4.0, 2.0],
                Material::Semiconductor,
            ))
            .add_box(BoxRegion::new(
                [1.0, 1.0, 2.0],
                [3.0, 3.0, 4.0],
                Material::Metal,
            ))
            .add_contact_box("plug_top", [1.0, 1.0, 4.0], [3.0, 3.0, 4.0])
            .add_contact_box("ground", [0.0, 0.0, 0.0], [4.0, 4.0, 0.0])
            .add_rough_facet("plug+x", Axis::X, 3.0, [1.0, 3.0], [2.0, 4.0])
            .build()
    }

    #[test]
    fn materials_follow_box_priority() {
        let s = simple_structure();
        let (metal, insulator, semi) = s.materials.counts();
        assert!(metal > 0 && insulator > 0 && semi > 0);
        // The metal plug overrides the semiconductor at the shared face z=2.
        let node = s
            .mesh
            .node_ids()
            .find(|&n| s.mesh.position(n) == [2.0, 2.0, 2.0])
            .unwrap();
        assert_eq!(s.materials.material(node), Material::Metal);
    }

    #[test]
    fn contacts_capture_expected_nodes() {
        let s = simple_structure();
        let top = s.contact("plug_top").unwrap();
        assert!(!top.nodes.is_empty());
        for &n in &top.nodes {
            let p = s.mesh.position(n);
            assert!((p[2] - 4.0).abs() < 1e-9);
        }
        let ground = s.contact("ground").unwrap();
        assert!(ground.nodes.len() >= 25); // 5x5 bottom face
        assert!(s.contact("missing").is_none());
    }

    #[test]
    fn facets_lie_on_their_plane() {
        let s = simple_structure();
        let f = s.facet("plug+x").unwrap();
        assert!(!f.nodes.is_empty());
        for &n in &f.nodes {
            let p = s.mesh.position(n);
            assert!((p[0] - 3.0).abs() < 1e-9);
            assert!(p[1] >= 1.0 - 1e-9 && p[1] <= 3.0 + 1e-9);
            assert!(p[2] >= 2.0 - 1e-9 && p[2] <= 4.0 + 1e-9);
        }
        assert_eq!(f.normal, Axis::X);
    }

    #[test]
    fn grid_respects_max_spacing() {
        let s = StructureBuilder::new(Material::Insulator)
            .with_max_spacing(0.5)
            .add_box(BoxRegion::new(
                [0.0, 0.0, 0.0],
                [2.0, 1.0, 1.0],
                Material::Metal,
            ))
            .build();
        let (nx, _, _) = s.mesh.dims();
        assert!(nx >= 5, "expected at least 5 x-lines, got {nx}");
        // Consecutive x coordinates never exceed the max spacing.
        let mut xs: Vec<f64> = s.mesh.node_ids().map(|n| s.mesh.position(n)[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for w in xs.windows(2) {
            assert!(w[1] - w[0] <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn semiconductor_nodes_and_contact_nodes_helpers() {
        let s = simple_structure();
        let semis = s.semiconductor_nodes();
        assert!(!semis.is_empty());
        for &n in &semis {
            assert_eq!(s.materials.material(n), Material::Semiconductor);
        }
        let cnodes = s.contact_nodes();
        assert!(cnodes.len() >= s.contact("plug_top").unwrap().nodes.len());
    }

    #[test]
    fn box_contains_is_inclusive() {
        let b = BoxRegion::new([0.0; 3], [1.0; 3], Material::Metal);
        assert!(b.contains([0.0, 0.5, 1.0]));
        assert!(!b.contains([1.1, 0.5, 0.5]));
    }
}
