//! Pre-built test structures from the paper's evaluation section.
//!
//! * [`metalplug`] — Example A (Section IV.A / Fig. 2a): two metal plugs on a
//!   doped silicon block, used for the interface-current study of Table I.
//! * [`tsv`] — Example B (Section IV.B / Fig. 3): two TSVs through a silicon
//!   substrate with surrounding metal traces, used for the capacitance study
//!   of Table II.

pub mod metalplug;
pub mod tsv;
