//! Pre-built test structures from the paper's evaluation section.
//!
//! * [`metalplug`] — Example A (Section IV.A / Fig. 2a): two metal plugs on a
//!   doped silicon block, used for the interface-current study of Table I.
//! * [`tsv`] — Example B (Section IV.B / Fig. 3): two TSVs through a silicon
//!   substrate with surrounding metal traces, used for the capacitance study
//!   of Table II.
//! * [`tsv_array`] — N×M TSV-array workload: a grid of vias through a shared
//!   substrate, used for the coupling-capacitance / crosstalk-matrix study.

pub mod metalplug;
pub mod tsv;
pub mod tsv_array;
