//! N×M TSV-array structure: a grid of vias through a shared silicon
//! substrate, the multi-via coupling workload of the 3D-IC crosstalk
//! literature (TSV-to-TSV coupling in CMOS stacks, 3DCAM crosstalk
//! avoidance).
//!
//! Every via is a square metal barrel with a dielectric liner, placed on a
//! regular `rows × cols` grid at a configurable pitch; the whole array
//! penetrates one silicon substrate slab, so every via couples to every
//! other through the semiconductor. Each via is a terminal of its own
//! (`via_{row}_{col}`), and each of its four lateral walls is a rough facet
//! (`via_{row}_{col}+x`, …) — the handle the variation machinery uses both
//! for surface roughness and for the scalar per-via radius/position
//! parameters of the array experiment.

use crate::{Axis, BoxRegion, FacetSide, Material, MeshError, Structure, StructureBuilder};

/// Geometric parameters of the N×M TSV array (all lengths in µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvArrayConfig {
    /// Number of via rows (y direction).
    pub rows: usize,
    /// Number of via columns (x direction).
    pub cols: usize,
    /// Centre-to-centre pitch between neighbouring vias (both directions).
    pub pitch: f64,
    /// Via metal cross-section side length (the "radius" knob of the
    /// variation study perturbs the four walls around this nominal size).
    pub via_size: f64,
    /// Via height (z extent of the metal barrel = domain height).
    pub via_height: f64,
    /// Dielectric liner thickness around each via.
    pub liner_thickness: f64,
    /// Thickness of the shared silicon substrate crossed by the array.
    pub substrate_thickness: f64,
    /// Clearance between the outermost liners and the domain boundary.
    pub margin: f64,
    /// Maximum mesh spacing.
    pub max_spacing: f64,
}

impl Default for TsvArrayConfig {
    fn default() -> Self {
        Self {
            rows: 3,
            cols: 3,
            pitch: 10.0,
            via_size: 5.0,
            via_height: 20.0,
            liner_thickness: 0.5,
            substrate_thickness: 5.0,
            margin: 2.5,
            max_spacing: 1.25,
        }
    }
}

impl TsvArrayConfig {
    /// A coarse `rows × cols` array for fast tests and quick-mode binaries.
    pub fn coarse(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            max_spacing: 2.5,
            ..Self::default()
        }
    }

    /// Number of vias (terminals) in the array.
    pub fn via_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Domain size `(x, y, z)`.
    pub fn domain(&self) -> [f64; 3] {
        let body = self.via_size + 2.0 * (self.liner_thickness + self.margin);
        [
            (self.cols.saturating_sub(1)) as f64 * self.pitch + body,
            (self.rows.saturating_sub(1)) as f64 * self.pitch + body,
            self.via_height,
        ]
    }

    /// Centre `(x, y)` of the via at grid position `(row, col)`.
    pub fn via_center(&self, row: usize, col: usize) -> [f64; 2] {
        let edge = self.via_size / 2.0 + self.liner_thickness + self.margin;
        [
            edge + col as f64 * self.pitch,
            edge + row as f64 * self.pitch,
        ]
    }

    /// Terminal name of the via at `(row, col)`.
    pub fn via_name(row: usize, col: usize) -> String {
        format!("via_{row}_{col}")
    }

    /// Terminal names of all vias, row-major (`via_0_0`, `via_0_1`, …).
    pub fn via_names(&self) -> Vec<String> {
        let mut names = Vec::with_capacity(self.via_count());
        for r in 0..self.rows {
            for c in 0..self.cols {
                names.push(Self::via_name(r, c));
            }
        }
        names
    }

    /// The four lateral-wall facet names of one via, in `+x, -x, +y, -y`
    /// order — the order the per-via parameter variation expects.
    pub fn via_wall_facets(row: usize, col: usize) -> [String; 4] {
        let name = Self::via_name(row, col);
        [
            format!("{name}+x"),
            format!("{name}-x"),
            format!("{name}+y"),
            format!("{name}-y"),
        ]
    }

    /// Grid distance (in pitch units) between two vias given row-major
    /// indices — 1.0 for nearest neighbours, √2 for diagonals.
    pub fn grid_distance(&self, a: usize, b: usize) -> f64 {
        let (ra, ca) = (a / self.cols, a % self.cols);
        let (rb, cb) = (b / self.cols, b % self.cols);
        let dr = ra.abs_diff(rb) as f64;
        let dc = ca.abs_diff(cb) as f64;
        (dr * dr + dc * dc).sqrt()
    }
}

/// Builds the N×M TSV-array structure.
///
/// Terminals: `via_{row}_{col}` for every grid position, row-major. Rough
/// facets: the four lateral walls of every via
/// (`via_{row}_{col}±x`, `via_{row}_{col}±y`), perturbed along their
/// normals with the interior side pointing into the metal barrel.
///
/// # Errors
/// Returns [`MeshError::DegenerateConfig`] if `rows` or `cols` is zero, or
/// if the liner would overlap a neighbouring via
/// (`pitch ≤ via_size + 2·liner_thickness`).
///
/// # Example
/// ```
/// use vaem_mesh::structures::tsv_array::{build_tsv_array_structure, TsvArrayConfig};
/// let s = build_tsv_array_structure(&TsvArrayConfig::coarse(2, 2))?;
/// assert_eq!(s.contacts.len(), 4);
/// assert_eq!(s.rough_facets.len(), 16);
/// assert!(s.contact("via_1_1").is_some());
/// # Ok::<(), vaem_mesh::MeshError>(())
/// ```
pub fn build_tsv_array_structure(config: &TsvArrayConfig) -> Result<Structure, MeshError> {
    if config.rows == 0 || config.cols == 0 {
        return Err(MeshError::DegenerateConfig {
            detail: format!(
                "TSV array needs at least one row and one column, got {}x{}",
                config.rows, config.cols
            ),
        });
    }
    if config.pitch <= config.via_size + 2.0 * config.liner_thickness {
        return Err(MeshError::DegenerateConfig {
            detail: format!(
                "via pitch {} leaves no substrate between the liners (via {} + 2×liner {})",
                config.pitch, config.via_size, config.liner_thickness
            ),
        });
    }
    let [dx, dy, dz] = config.domain();
    let half = config.via_size / 2.0;
    let liner = config.liner_thickness;

    // Shared substrate slab in the middle of the stack.
    let sub_z0 = (dz - config.substrate_thickness) / 2.0;
    let sub_z1 = sub_z0 + config.substrate_thickness;

    let mut builder = StructureBuilder::new(Material::Insulator)
        .with_max_spacing(config.max_spacing)
        .add_box(BoxRegion::new(
            [0.0, 0.0, sub_z0],
            [dx, dy, sub_z1],
            Material::Semiconductor,
        ));

    // Vias with liners, contacts and lateral-wall facets.
    for r in 0..config.rows {
        for c in 0..config.cols {
            let [cx, cy] = config.via_center(r, c);
            let name = TsvArrayConfig::via_name(r, c);
            builder = builder
                .add_box(BoxRegion::new(
                    [cx - half - liner, cy - half - liner, 0.0],
                    [cx + half + liner, cy + half + liner, dz],
                    Material::Insulator,
                ))
                .add_box(BoxRegion::new(
                    [cx - half, cy - half, 0.0],
                    [cx + half, cy + half, dz],
                    Material::Metal,
                ))
                .add_contact_box(
                    &name,
                    [cx - half, cy - half, 0.0],
                    [cx + half, cy + half, dz],
                )
                .add_rough_facet_with_side(
                    &format!("{name}+x"),
                    Axis::X,
                    cx + half,
                    [cy - half, cy + half],
                    [0.0, dz],
                    FacetSide::Negative,
                )
                .add_rough_facet_with_side(
                    &format!("{name}-x"),
                    Axis::X,
                    cx - half,
                    [cy - half, cy + half],
                    [0.0, dz],
                    FacetSide::Positive,
                )
                .add_rough_facet_with_side(
                    &format!("{name}+y"),
                    Axis::Y,
                    cy + half,
                    [cx - half, cx + half],
                    [0.0, dz],
                    FacetSide::Negative,
                )
                .add_rough_facet_with_side(
                    &format!("{name}-y"),
                    Axis::Y,
                    cy - half,
                    [cx - half, cx + half],
                    [0.0, dz],
                    FacetSide::Positive,
                );
        }
    }

    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn contact_and_facet_counts_scale_with_the_grid() {
        for (rows, cols) in [(1, 1), (2, 2), (2, 3), (3, 3)] {
            let cfg = TsvArrayConfig::coarse(rows, cols);
            let s = build_tsv_array_structure(&cfg).unwrap();
            assert_eq!(s.contacts.len(), rows * cols, "{rows}x{cols} contacts");
            assert_eq!(
                s.rough_facets.len(),
                4 * rows * cols,
                "{rows}x{cols} facets"
            );
            for name in cfg.via_names() {
                let contact = s.contact(&name).unwrap_or_else(|| panic!("missing {name}"));
                assert!(!contact.nodes.is_empty(), "{name} has no nodes");
            }
        }
    }

    #[test]
    fn node_count_grows_with_the_array() {
        let small = build_tsv_array_structure(&TsvArrayConfig::coarse(2, 2)).unwrap();
        let large = build_tsv_array_structure(&TsvArrayConfig::coarse(3, 3)).unwrap();
        assert!(
            large.mesh.node_count() > small.mesh.node_count(),
            "3x3 ({}) must out-mesh 2x2 ({})",
            large.mesh.node_count(),
            small.mesh.node_count()
        );
    }

    #[test]
    fn terminals_are_disjoint_metal_node_sets() {
        let s = build_tsv_array_structure(&TsvArrayConfig::coarse(2, 2)).unwrap();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for contact in &s.contacts {
            for &n in &contact.nodes {
                assert!(
                    seen.insert(n.index()),
                    "contact {} overlaps another via",
                    contact.name
                );
                assert!(
                    s.materials.material(n).is_metal(),
                    "contact {} holds a non-metal node",
                    contact.name
                );
            }
        }
    }

    #[test]
    fn substrate_band_holds_semiconductor_nodes() {
        let cfg = TsvArrayConfig::coarse(2, 2);
        let s = build_tsv_array_structure(&cfg).unwrap();
        let semis = s.semiconductor_nodes();
        assert!(!semis.is_empty());
        let sub_z0 = (cfg.domain()[2] - cfg.substrate_thickness) / 2.0;
        let sub_z1 = sub_z0 + cfg.substrate_thickness;
        for &n in &semis {
            let z = s.mesh.position(n)[2];
            assert!(z >= sub_z0 - 1e-9 && z <= sub_z1 + 1e-9);
        }
    }

    #[test]
    fn wall_facets_lie_on_their_via() {
        let cfg = TsvArrayConfig::coarse(2, 3);
        let s = build_tsv_array_structure(&cfg).unwrap();
        let [cx, _] = cfg.via_center(1, 2);
        let facet = s.facet("via_1_2+x").expect("wall facet exists");
        assert!(!facet.nodes.is_empty());
        for &n in &facet.nodes {
            let p = s.mesh.position(n);
            assert!((p[0] - (cx + cfg.via_size / 2.0)).abs() < 1e-9);
        }
        assert_eq!(facet.normal, Axis::X);
        assert_eq!(facet.interior_side, FacetSide::Negative);
    }

    #[test]
    fn geometry_helpers_are_consistent() {
        let cfg = TsvArrayConfig::coarse(2, 3);
        assert_eq!(cfg.via_count(), 6);
        assert_eq!(cfg.via_names().len(), 6);
        assert_eq!(cfg.via_names()[0], "via_0_0");
        assert_eq!(cfg.via_names()[5], "via_1_2");
        // Pitch separates neighbouring centres exactly.
        let a = cfg.via_center(0, 0);
        let b = cfg.via_center(0, 1);
        assert!((b[0] - a[0] - cfg.pitch).abs() < 1e-12);
        assert_eq!(a[1], b[1]);
        // Row-major grid distances: neighbour 1, diagonal sqrt(2).
        assert!((cfg.grid_distance(0, 1) - 1.0).abs() < 1e-12);
        assert!((cfg.grid_distance(0, 4) - 2.0_f64.sqrt()).abs() < 1e-12);
        let walls = TsvArrayConfig::via_wall_facets(1, 0);
        assert_eq!(walls[0], "via_1_0+x");
        assert_eq!(walls[3], "via_1_0-y");
    }

    #[test]
    fn overlapping_liners_are_a_typed_error() {
        let err = build_tsv_array_structure(&TsvArrayConfig {
            pitch: 5.5,
            ..TsvArrayConfig::coarse(2, 2)
        })
        .unwrap_err();
        let MeshError::DegenerateConfig { detail } = err;
        assert!(
            detail.contains("no substrate between the liners"),
            "unexpected detail: {detail}"
        );
    }

    #[test]
    fn zero_dimensions_are_a_typed_error() {
        for (rows, cols) in [(0, 2), (2, 0), (0, 0)] {
            let err = build_tsv_array_structure(&TsvArrayConfig::coarse(rows, cols)).unwrap_err();
            let MeshError::DegenerateConfig { detail } = err;
            assert!(
                detail.contains("at least one row"),
                "unexpected detail for {rows}x{cols}: {detail}"
            );
        }
    }
}
