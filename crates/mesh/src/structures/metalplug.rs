//! Example A: two metal plugs on doped silicon (paper Section IV.A, Fig. 2a).
//!
//! The structure is a 10×10×10 µm doped-silicon block with two
//! 3×3×5 µm metal plugs sitting on its top face; the quantity of interest is
//! the current through the metal–semiconductor interfaces at 1 GHz under
//! surface roughness (on those interfaces) and random doping fluctuation.

use crate::{Axis, BoxRegion, FacetSide, Material, Structure, StructureBuilder};

/// Geometric parameters of the metal-plug structure (all lengths in µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetalPlugConfig {
    /// Lateral size of the silicon block (x and y).
    pub silicon_size: f64,
    /// Height of the silicon block (z).
    pub silicon_height: f64,
    /// Lateral size of each square plug.
    pub plug_size: f64,
    /// Height of each plug.
    pub plug_height: f64,
    /// Gap between the silicon edge and the first plug (x direction).
    pub plug_edge_margin: f64,
    /// Maximum mesh spacing.
    pub max_spacing: f64,
}

impl Default for MetalPlugConfig {
    fn default() -> Self {
        Self {
            silicon_size: 10.0,
            silicon_height: 10.0,
            plug_size: 3.0,
            plug_height: 5.0,
            plug_edge_margin: 1.0,
            max_spacing: 1.0,
        }
    }
}

impl MetalPlugConfig {
    /// A coarser variant used by fast tests and the bench "quick" mode.
    pub fn coarse() -> Self {
        Self {
            max_spacing: 2.0,
            ..Self::default()
        }
    }

    /// An even coarser variant whose DC and AC systems stay below the
    /// `Auto` direct-LU threshold, so the sample sweeps exercise the seeded
    /// direct factorization path (cross-sample symbolic reuse). Used by the
    /// `sample_sweep` benches and the seeded-reuse tests.
    pub fn tiny() -> Self {
        Self {
            max_spacing: 2.5,
            ..Self::default()
        }
    }

    /// Footprint `(min, max)` of plug 1 in the x–y plane.
    pub fn plug1_footprint(&self) -> ([f64; 2], [f64; 2]) {
        let x0 = self.plug_edge_margin;
        let y0 = 0.5 * (self.silicon_size - self.plug_size);
        ([x0, y0], [x0 + self.plug_size, y0 + self.plug_size])
    }

    /// Footprint `(min, max)` of plug 2 in the x–y plane.
    pub fn plug2_footprint(&self) -> ([f64; 2], [f64; 2]) {
        let x1 = self.silicon_size - self.plug_edge_margin;
        let y0 = 0.5 * (self.silicon_size - self.plug_size);
        ([x1 - self.plug_size, y0], [x1, y0 + self.plug_size])
    }
}

/// Builds the Example-A structure.
///
/// Terminals: `"plug1"`, `"plug2"` (top faces of the plugs) and `"ground"`
/// (bottom face of the silicon). Rough facets: the metal–semiconductor
/// interface under each plug (`"plug1_interface"`, `"plug2_interface"`),
/// perturbed along z as in the paper's Example A (σ_G = 0.5 µm).
///
/// # Example
/// ```
/// use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
/// let s = build_metalplug_structure(&MetalPlugConfig::default());
/// assert_eq!(s.rough_facets.len(), 2);
/// assert!(s.contact("plug1").is_some());
/// assert!(s.contact("ground").is_some());
/// ```
pub fn build_metalplug_structure(config: &MetalPlugConfig) -> Structure {
    let si = config.silicon_size;
    let h = config.silicon_height;
    let top = h + config.plug_height;
    let ([p1x0, p1y0], [p1x1, p1y1]) = config.plug1_footprint();
    let ([p2x0, p2y0], [p2x1, p2y1]) = config.plug2_footprint();

    StructureBuilder::new(Material::Insulator)
        .with_max_spacing(config.max_spacing)
        // Guarantee at least one dielectric grid plane between the facing
        // plug walls so the two terminals can never merge on coarse meshes.
        .add_grid_line(Axis::X, 0.5 * (p1x1 + p2x0))
        // Doped silicon block.
        .add_box(BoxRegion::new(
            [0.0, 0.0, 0.0],
            [si, si, h],
            Material::Semiconductor,
        ))
        // Metal plugs sitting on the silicon.
        .add_box(BoxRegion::new(
            [p1x0, p1y0, h],
            [p1x1, p1y1, top],
            Material::Metal,
        ))
        .add_box(BoxRegion::new(
            [p2x0, p2y0, h],
            [p2x1, p2y1, top],
            Material::Metal,
        ))
        // Terminals.
        .add_contact_box("plug1", [p1x0, p1y0, top], [p1x1, p1y1, top])
        .add_contact_box("plug2", [p2x0, p2y0, top], [p2x1, p2y1, top])
        .add_contact_box("ground", [0.0, 0.0, 0.0], [si, si, 0.0])
        // Rough metal-semiconductor interfaces (bottom faces of the plugs).
        .add_rough_facet_with_side(
            "plug1_interface",
            Axis::Z,
            h,
            [p1x0, p1x1],
            [p1y0, p1y1],
            FacetSide::Negative,
        )
        .add_rough_facet_with_side(
            "plug2_interface",
            Axis::Z,
            h,
            [p2x0, p2x1],
            [p2y0, p2y1],
            FacetSide::Negative,
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_structure_has_expected_scale() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        // Comparable to the paper's 1300-node mesh.
        assert!(
            s.mesh.node_count() > 800 && s.mesh.node_count() < 6000,
            "node count {}",
            s.mesh.node_count()
        );
        let (metal, _, semi) = s.materials.counts();
        assert!(metal > 0);
        assert!(semi > 0);
    }

    #[test]
    fn contacts_are_disjoint_and_on_expected_planes() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let plug1 = s.contact("plug1").unwrap();
        let plug2 = s.contact("plug2").unwrap();
        let ground = s.contact("ground").unwrap();
        assert!(!plug1.nodes.is_empty());
        assert!(!plug2.nodes.is_empty());
        assert!(!ground.nodes.is_empty());
        for &n in &plug1.nodes {
            assert!((s.mesh.position(n)[2] - 15.0).abs() < 1e-9);
        }
        for &n in &ground.nodes {
            assert!(s.mesh.position(n)[2].abs() < 1e-9);
        }
        let set1: std::collections::BTreeSet<_> = plug1.nodes.iter().collect();
        assert!(plug2.nodes.iter().all(|n| !set1.contains(n)));
    }

    #[test]
    fn interface_facets_have_a_plug_footprint_of_nodes() {
        let cfg = MetalPlugConfig::default();
        let s = build_metalplug_structure(&cfg);
        let f1 = s.facet("plug1_interface").unwrap();
        // 3x3 µm footprint at 1 µm pitch: 4x4 = 16 nodes, matching the paper's
        // 32 perturbed nodes over the two interfaces.
        assert_eq!(f1.nodes.len(), 16, "got {}", f1.nodes.len());
        assert_eq!(f1.normal, Axis::Z);
        for &n in &f1.nodes {
            assert!((s.mesh.position(n)[2] - cfg.silicon_height).abs() < 1e-9);
        }
        let total: usize = s.rough_facets.iter().map(|f| f.nodes.len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn interface_nodes_touch_metal_above_and_silicon_below() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let f1 = s.facet("plug1_interface").unwrap();
        let mut saw_metal_above = 0;
        for &n in &f1.nodes {
            // Node itself is metal (plug box overrides silicon at the face).
            if s.materials.material(n).is_metal() {
                saw_metal_above += 1;
            }
            let below = s.mesh.neighbor(n, Axis::Z, false).unwrap();
            assert!(s.materials.material(below).is_semiconductor());
        }
        assert!(saw_metal_above > 0);
    }

    #[test]
    fn coarse_config_is_smaller() {
        let fine = build_metalplug_structure(&MetalPlugConfig::default());
        let coarse = build_metalplug_structure(&MetalPlugConfig::coarse());
        assert!(coarse.mesh.node_count() < fine.mesh.node_count());
    }
}
