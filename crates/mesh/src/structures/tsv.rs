//! Example B: two TSVs through a silicon substrate with neighbouring metal
//! traces (paper Section IV.B, Fig. 3).
//!
//! Two 5×5×20 µm TSVs at 10 µm pitch penetrate a 5 µm silicon substrate;
//! a thin dielectric liner separates the TSV metal from the silicon, and four
//! 1×2 µm metal traces at 2 µm pitch run alongside the TSVs in the top metal
//! layer. The quantities of interest are the self- and coupling capacitances
//! of TSV1 (Table II) under lateral-wall roughness and random doping
//! fluctuation in the substrate.

use crate::{Axis, BoxRegion, FacetSide, Material, Structure, StructureBuilder};

/// Geometric parameters of the TSV structure (all lengths in µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvConfig {
    /// TSV metal cross-section side length.
    pub tsv_size: f64,
    /// TSV height (z extent of the metal barrel).
    pub tsv_height: f64,
    /// Centre-to-centre pitch between the two TSVs.
    pub pitch: f64,
    /// Dielectric liner thickness around each TSV.
    pub liner_thickness: f64,
    /// Thickness of the silicon substrate crossed by the TSVs.
    pub substrate_thickness: f64,
    /// Thickness of each metal (trace) layer.
    pub metal_layer_thickness: f64,
    /// Width of the surrounding traces.
    pub trace_width: f64,
    /// Pitch between neighbouring traces.
    pub trace_pitch: f64,
    /// Maximum mesh spacing.
    pub max_spacing: f64,
}

impl Default for TsvConfig {
    fn default() -> Self {
        Self {
            tsv_size: 5.0,
            tsv_height: 20.0,
            pitch: 10.0,
            liner_thickness: 0.5,
            substrate_thickness: 5.0,
            metal_layer_thickness: 2.0,
            trace_width: 1.0,
            trace_pitch: 2.0,
            max_spacing: 1.25,
        }
    }
}

impl TsvConfig {
    /// A coarser variant used by fast tests and the bench "quick" mode.
    pub fn coarse() -> Self {
        Self {
            max_spacing: 2.5,
            ..Self::default()
        }
    }

    /// Domain size `(x, y, z)`.
    pub fn domain(&self) -> [f64; 3] {
        let x = self.pitch + self.tsv_size + 2.0 * (self.liner_thickness + 2.5);
        let y = self.tsv_size + 2.0 * (self.liner_thickness + 2.0);
        [x, y, self.tsv_height]
    }

    /// Centre x-coordinates of the two TSVs.
    pub fn tsv_centers(&self) -> [f64; 2] {
        let [dx, _, _] = self.domain();
        let mid = dx / 2.0;
        [mid - self.pitch / 2.0, mid + self.pitch / 2.0]
    }
}

/// Builds the Example-B TSV structure.
///
/// Terminals: `"tsv1"`, `"tsv2"`, `"w1"`…`"w4"`. Rough facets: the four
/// lateral walls of each TSV (`"tsv1+x"`, `"tsv1-x"`, `"tsv1+y"`, `"tsv1-y"`,
/// same for `tsv2`), perturbed along their normals.
///
/// # Example
/// ```
/// use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};
/// let s = build_tsv_structure(&TsvConfig::default());
/// assert_eq!(s.rough_facets.len(), 8);
/// assert!(s.contact("tsv1").is_some());
/// assert!(s.contact("w4").is_some());
/// ```
pub fn build_tsv_structure(config: &TsvConfig) -> Structure {
    let [dx, dy, dz] = config.domain();
    let [c1, c2] = config.tsv_centers();
    let half = config.tsv_size / 2.0;
    let liner = config.liner_thickness;
    let y_mid = dy / 2.0;

    // Substrate occupies the middle of the stack.
    let sub_z0 = (dz - config.substrate_thickness) / 2.0;
    let sub_z1 = sub_z0 + config.substrate_thickness;
    // Top metal (trace) layer sits above the substrate with a small gap.
    let m_top_z0 = sub_z1 + 2.0;
    let m_top_z1 = m_top_z0 + config.metal_layer_thickness;

    let mut builder = StructureBuilder::new(Material::Insulator)
        .with_max_spacing(config.max_spacing)
        // Silicon substrate through the whole x-y extent.
        .add_box(BoxRegion::new(
            [0.0, 0.0, sub_z0],
            [dx, dy, sub_z1],
            Material::Semiconductor,
        ));

    // TSVs with dielectric liners.
    for (name, c) in [("tsv1", c1), ("tsv2", c2)] {
        builder = builder
            .add_box(BoxRegion::new(
                [c - half - liner, y_mid - half - liner, 0.0],
                [c + half + liner, y_mid + half + liner, dz],
                Material::Insulator,
            ))
            .add_box(BoxRegion::new(
                [c - half, y_mid - half, 0.0],
                [c + half, y_mid + half, dz],
                Material::Metal,
            ))
            .add_contact_box(
                name,
                [c - half, y_mid - half, 0.0],
                [c + half, y_mid + half, dz],
            );
    }

    // Four traces running along y in the top metal layer: two to the left of
    // TSV1 and two to the right of TSV2, at the configured pitch.
    let w = config.trace_width;
    let p = config.trace_pitch;
    let trace_xs = [
        c1 - half - liner - p,
        c1 - half - liner - p - p,
        c2 + half + liner + p - w,
        c2 + half + liner + p + p - w,
    ];
    for (i, &x0) in trace_xs.iter().enumerate() {
        let name = format!("w{}", i + 1);
        builder = builder
            .add_box(BoxRegion::new(
                [x0, 0.0, m_top_z0],
                [x0 + w, dy, m_top_z1],
                Material::Metal,
            ))
            .add_contact_box(&name, [x0, 0.0, m_top_z0], [x0 + w, dy, m_top_z1]);
    }

    // Rough lateral walls of both TSVs (the metal surface planes).
    for (tsv, c) in [("tsv1", c1), ("tsv2", c2)] {
        builder = builder
            .add_rough_facet_with_side(
                &format!("{tsv}+x"),
                Axis::X,
                c + half,
                [y_mid - half, y_mid + half],
                [0.0, dz],
                FacetSide::Negative,
            )
            .add_rough_facet_with_side(
                &format!("{tsv}-x"),
                Axis::X,
                c - half,
                [y_mid - half, y_mid + half],
                [0.0, dz],
                FacetSide::Positive,
            )
            .add_rough_facet_with_side(
                &format!("{tsv}+y"),
                Axis::Y,
                y_mid + half,
                [c - half, c + half],
                [0.0, dz],
                FacetSide::Negative,
            )
            .add_rough_facet_with_side(
                &format!("{tsv}-y"),
                Axis::Y,
                y_mid - half,
                [c - half, c + half],
                [0.0, dz],
                FacetSide::Positive,
            );
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn default_structure_scale_is_comparable_to_paper() {
        let s = build_tsv_structure(&TsvConfig::default());
        // The paper's mesh has 4032 nodes and 11332 links.
        assert!(
            s.mesh.node_count() > 1500 && s.mesh.node_count() < 12000,
            "node count {}",
            s.mesh.node_count()
        );
        assert!(s.mesh.link_count() > 3 * 1500);
    }

    #[test]
    fn six_terminals_exist_and_are_disjoint() {
        let s = build_tsv_structure(&TsvConfig::default());
        let names = ["tsv1", "tsv2", "w1", "w2", "w3", "w4"];
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for name in names {
            let c = s.contact(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(!c.nodes.is_empty(), "{name} has no nodes");
            for &n in &c.nodes {
                assert!(seen.insert(n.index()), "{name} overlaps another contact");
            }
        }
    }

    #[test]
    fn contacts_are_all_metal_nodes() {
        let s = build_tsv_structure(&TsvConfig::default());
        for c in &s.contacts {
            for &n in &c.nodes {
                assert!(
                    s.materials.material(n).is_metal(),
                    "contact {} contains a non-metal node",
                    c.name
                );
            }
        }
    }

    #[test]
    fn eight_rough_facets_with_dozens_of_nodes_each() {
        let s = build_tsv_structure(&TsvConfig::default());
        assert_eq!(s.rough_facets.len(), 8);
        for f in &s.rough_facets {
            assert!(
                f.nodes.len() >= 30,
                "facet {} has only {} nodes",
                f.name,
                f.nodes.len()
            );
        }
    }

    #[test]
    fn substrate_separates_from_tsv_metal_by_liner() {
        let cfg = TsvConfig::default();
        let s = build_tsv_structure(&cfg);
        let [c1, _] = cfg.tsv_centers();
        let half = cfg.tsv_size / 2.0;
        // A node just outside the metal wall (inside the liner) is insulator.
        let probe = s.mesh.node_ids().find(|&n| {
            let p = s.mesh.position(n);
            (p[0] - (c1 + half + cfg.liner_thickness / 2.0)).abs() < cfg.liner_thickness
                && (p[1] - cfg.domain()[1] / 2.0).abs() < 1.0
                && p[2] > cfg.domain()[2] * 0.45
                && p[2] < cfg.domain()[2] * 0.55
                && !s.materials.material(n).is_metal()
        });
        assert!(probe.is_some(), "expected liner nodes next to the TSV wall");
    }

    #[test]
    fn semiconductor_nodes_exist_in_substrate_band() {
        let cfg = TsvConfig::default();
        let s = build_tsv_structure(&cfg);
        let semis = s.semiconductor_nodes();
        assert!(!semis.is_empty());
        let sub_z0 = (cfg.domain()[2] - cfg.substrate_thickness) / 2.0;
        let sub_z1 = sub_z0 + cfg.substrate_thickness;
        for &n in &semis {
            let z = s.mesh.position(n)[2];
            assert!(z >= sub_z0 - 1e-9 && z <= sub_z1 + 1e-9);
        }
    }
}
