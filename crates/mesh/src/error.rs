//! Error type of the geometry builders.

use std::fmt;

/// Errors produced when validating a structure configuration.
///
/// Geometry builders used to `assert!` on impossible configurations, which
/// turned one bad variation draw (or a typo'd experiment config) into a
/// process abort. A typed error lets the analysis layer quarantine the
/// offending sample instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// The configuration describes a geometrically impossible structure
    /// (zero grid dimensions, overlapping liners, inverted boxes, ...).
    DegenerateConfig {
        /// Human-readable description of the impossible geometry.
        detail: String,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::DegenerateConfig { detail } => {
                write!(f, "degenerate mesh configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = MeshError::DegenerateConfig {
            detail: "pitch 5.5 leaves no substrate".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("degenerate mesh configuration"));
        assert!(text.contains("pitch 5.5"));
    }
}
