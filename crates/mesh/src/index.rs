//! Strongly typed indices for nodes, links and axes.

use std::fmt;

/// Identifier of a mesh node (vertex of the structured grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a mesh link (edge between two adjacent nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Cartesian axis of the structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// x direction (index `i`).
    X,
    /// y direction (index `j`).
    Y,
    /// z direction (index `k`).
    Z,
}

impl Axis {
    /// All three axes in `X`, `Y`, `Z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Axis position used to index `[f64; 3]` coordinate arrays.
    #[inline]
    pub fn as_usize(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The two axes perpendicular to this one.
    pub fn perpendicular(self) -> [Axis; 2] {
        match self {
            Axis::X => [Axis::Y, Axis::Z],
            Axis::Y => [Axis::X, Axis::Z],
            Axis::Z => [Axis::X, Axis::Y],
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// Logical (i, j, k) position of a node in the structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridIndex {
    /// Index along x.
    pub i: usize,
    /// Index along y.
    pub j: usize,
    /// Index along z.
    pub k: usize,
}

impl GridIndex {
    /// Creates a grid index.
    pub fn new(i: usize, j: usize, k: usize) -> Self {
        Self { i, j, k }
    }

    /// Component along the given axis.
    pub fn along(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.i,
            Axis::Y => self.j,
            Axis::Z => self.k,
        }
    }
}

impl fmt::Display for GridIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.i, self.j, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_helpers() {
        assert_eq!(Axis::X.as_usize(), 0);
        assert_eq!(Axis::Z.as_usize(), 2);
        assert_eq!(Axis::Y.perpendicular(), [Axis::X, Axis::Z]);
        assert_eq!(Axis::ALL.len(), 3);
        assert_eq!(Axis::X.to_string(), "x");
    }

    #[test]
    fn grid_index_accessors() {
        let g = GridIndex::new(1, 2, 3);
        assert_eq!(g.along(Axis::X), 1);
        assert_eq!(g.along(Axis::Y), 2);
        assert_eq!(g.along(Axis::Z), 3);
        assert_eq!(g.to_string(), "(1, 2, 3)");
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(3) < NodeId(5));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(NodeId(4).to_string(), "n4");
    }
}
