//! Mesh validity diagnostics.
//!
//! The paper's Fig. 1 contrasts the traditional geometric variation model,
//! where large perturbations make interface nodes cross their neighbours and
//! "destroy" the mesh, with the smart continuous model that keeps the mesh
//! valid. These diagnostics quantify that: a mesh is valid when every grid
//! column remains strictly monotone (no node crossings, no collapsed or
//! inverted dual cells).

use crate::{Axis, CartesianMesh, GridIndex};

/// Summary of the geometric health of a (possibly perturbed) mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshQualityReport {
    /// Number of adjacent node pairs whose coordinates are out of order
    /// (crossed) along their common grid column.
    pub crossing_count: usize,
    /// Number of adjacent node pairs closer than `min_spacing_tolerance`
    /// (nearly collapsed cells).
    pub near_collapse_count: usize,
    /// Smallest link length in the mesh (µm); negative lengths cannot occur
    /// (lengths are Euclidean), crossings show up in `crossing_count`.
    pub min_link_length: f64,
    /// Smallest signed spacing along any grid column (µm); negative when
    /// nodes crossed.
    pub min_signed_spacing: f64,
}

impl MeshQualityReport {
    /// Returns `true` when the mesh has no crossings (the paper's criterion
    /// for a usable variational geometry).
    pub fn is_valid(&self) -> bool {
        self.crossing_count == 0
    }
}

/// Assesses the mesh, flagging node crossings and near-collapsed cells.
///
/// `min_spacing_tolerance` is the spacing (µm) below which an adjacent node
/// pair is counted as nearly collapsed.
///
/// # Example
/// ```
/// use vaem_mesh::{CartesianMesh, Axis, GridIndex};
/// use vaem_mesh::quality::assess;
///
/// let mut mesh = CartesianMesh::from_grid_lines(
///     vec![0.0, 1.0, 2.0],
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
/// );
/// assert!(assess(&mesh, 1e-6).is_valid());
/// // Push the middle x-plane past its right neighbour: the mesh breaks.
/// let node = mesh.node_at(GridIndex::new(1, 0, 0));
/// mesh.displace(node, Axis::X, 1.5);
/// assert!(!assess(&mesh, 1e-6).is_valid());
/// ```
pub fn assess(mesh: &CartesianMesh, min_spacing_tolerance: f64) -> MeshQualityReport {
    let (nx, ny, nz) = mesh.dims();
    let mut crossing_count = 0usize;
    let mut near_collapse_count = 0usize;
    let mut min_signed_spacing = f64::INFINITY;

    let mut check = |axis: Axis, len: usize, other1: usize, other2: usize| {
        for a in 0..other1 {
            for b in 0..other2 {
                for s in 0..len - 1 {
                    let (idx0, idx1) = match axis {
                        Axis::X => (GridIndex::new(s, a, b), GridIndex::new(s + 1, a, b)),
                        Axis::Y => (GridIndex::new(a, s, b), GridIndex::new(a, s + 1, b)),
                        Axis::Z => (GridIndex::new(a, b, s), GridIndex::new(a, b, s + 1)),
                    };
                    let c0 = mesh.position(mesh.node_at(idx0))[axis.as_usize()];
                    let c1 = mesh.position(mesh.node_at(idx1))[axis.as_usize()];
                    let spacing = c1 - c0;
                    min_signed_spacing = min_signed_spacing.min(spacing);
                    if spacing <= 0.0 {
                        crossing_count += 1;
                    } else if spacing < min_spacing_tolerance {
                        near_collapse_count += 1;
                    }
                }
            }
        }
    };

    check(Axis::X, nx, ny, nz);
    check(Axis::Y, ny, nx, nz);
    check(Axis::Z, nz, nx, ny);

    let min_link_length = mesh
        .link_ids()
        .map(|l| mesh.link_length(l))
        .fold(f64::INFINITY, f64::min);

    MeshQualityReport {
        crossing_count,
        near_collapse_count,
        min_link_length,
        min_signed_spacing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> CartesianMesh {
        let lines: Vec<f64> = vec![0.0, 1.0, 2.0, 3.0];
        CartesianMesh::from_grid_lines(lines.clone(), lines.clone(), lines)
    }

    #[test]
    fn pristine_mesh_is_valid() {
        let report = assess(&mesh(), 1e-3);
        assert!(report.is_valid());
        assert_eq!(report.crossing_count, 0);
        assert_eq!(report.near_collapse_count, 0);
        assert!((report.min_link_length - 1.0).abs() < 1e-12);
        assert!((report.min_signed_spacing - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_perturbation_keeps_validity() {
        let mut m = mesh();
        let n = m.node_at(GridIndex::new(1, 1, 1));
        m.displace(n, Axis::X, 0.4);
        let report = assess(&m, 1e-3);
        assert!(report.is_valid());
        assert!(report.min_signed_spacing < 1.0);
    }

    #[test]
    fn crossing_is_detected() {
        let mut m = mesh();
        let n = m.node_at(GridIndex::new(1, 1, 1));
        // Move past the next grid plane (spacing 1.0): crossing.
        m.displace(n, Axis::X, 1.2);
        let report = assess(&m, 1e-3);
        assert!(!report.is_valid());
        assert!(report.crossing_count >= 1);
        assert!(report.min_signed_spacing < 0.0);
    }

    #[test]
    fn near_collapse_is_counted_separately() {
        let mut m = mesh();
        let n = m.node_at(GridIndex::new(1, 0, 0));
        m.displace(n, Axis::X, 0.9999);
        let report = assess(&m, 1e-2);
        assert!(report.is_valid());
        assert!(report.near_collapse_count >= 1);
    }
}
