//! Logically structured Cartesian mesh with per-node coordinates.

use crate::{Axis, GridIndex, LinkId, NodeId};

/// A link (edge) between two adjacent nodes of the structured grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Lower-index endpoint.
    pub from: NodeId,
    /// Upper-index endpoint.
    pub to: NodeId,
    /// Axis along which the link runs.
    pub axis: Axis,
}

/// A logically structured, geometrically perturbable Cartesian mesh.
///
/// The connectivity is that of an `nx × ny × nz` tensor grid, but every node
/// carries its own coordinates so that interface perturbations (surface
/// roughness) can displace nodes individually — exactly the situation of the
/// paper's Section III.A where "the original standard cubes become irregular".
///
/// Finite-volume geometric quantities (link length, dual face area, dual
/// volume) are always computed from the *current* node coordinates.
///
/// # Example
/// ```
/// use vaem_mesh::CartesianMesh;
/// let mesh = CartesianMesh::from_grid_lines(
///     vec![0.0, 1.0, 2.0],
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
/// );
/// assert_eq!(mesh.node_count(), 12);
/// assert_eq!(mesh.link_count(), 8 + 6 + 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CartesianMesh {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Per-node coordinates (perturbable).
    coords: Vec<[f64; 3]>,
    /// Links, ordered: all x-links, then y-links, then z-links.
    links: Vec<Link>,
    /// Number of x-links and y-links (for id arithmetic).
    x_link_count: usize,
    y_link_count: usize,
}

impl CartesianMesh {
    /// Builds the mesh from tensor-product grid lines.
    ///
    /// # Panics
    /// Panics if any direction has fewer than two grid lines or the lines are
    /// not strictly increasing.
    pub fn from_grid_lines(xs: Vec<f64>, ys: Vec<f64>, zs: Vec<f64>) -> Self {
        for (name, v) in [("x", &xs), ("y", &ys), ("z", &zs)] {
            assert!(v.len() >= 2, "need at least two {name} grid lines");
            assert!(
                v.windows(2).all(|w| w[1] > w[0]),
                "{name} grid lines must be strictly increasing"
            );
        }
        let (nx, ny, nz) = (xs.len(), ys.len(), zs.len());
        let mut coords = Vec::with_capacity(nx * ny * nz);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    coords.push([xs[i], ys[j], zs[k]]);
                }
            }
        }
        let node = |i: usize, j: usize, k: usize| NodeId(i + nx * (j + ny * k));
        let mut links = Vec::new();
        // x-links
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx - 1 {
                    links.push(Link {
                        from: node(i, j, k),
                        to: node(i + 1, j, k),
                        axis: Axis::X,
                    });
                }
            }
        }
        let x_link_count = links.len();
        // y-links
        for k in 0..nz {
            for j in 0..ny - 1 {
                for i in 0..nx {
                    links.push(Link {
                        from: node(i, j, k),
                        to: node(i, j + 1, k),
                        axis: Axis::Y,
                    });
                }
            }
        }
        let y_link_count = links.len() - x_link_count;
        // z-links
        for k in 0..nz - 1 {
            for j in 0..ny {
                for i in 0..nx {
                    links.push(Link {
                        from: node(i, j, k),
                        to: node(i, j, k + 1),
                        axis: Axis::Z,
                    });
                }
            }
        }

        Self {
            nx,
            ny,
            nz,
            coords,
            links,
            x_link_count,
            y_link_count,
        }
    }

    /// Grid dimensions `(nx, ny, nz)` in node counts.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of links along each axis `(x, y, z)`.
    pub fn link_counts_by_axis(&self) -> (usize, usize, usize) {
        (
            self.x_link_count,
            self.y_link_count,
            self.links.len() - self.x_link_count - self.y_link_count,
        )
    }

    /// Node id at a grid index.
    ///
    /// # Panics
    /// Panics if the index is out of range.
    #[inline]
    pub fn node_at(&self, idx: GridIndex) -> NodeId {
        assert!(idx.i < self.nx && idx.j < self.ny && idx.k < self.nz);
        NodeId(idx.i + self.nx * (idx.j + self.ny * idx.k))
    }

    /// Grid index of a node id.
    #[inline]
    pub fn grid_index(&self, node: NodeId) -> GridIndex {
        let id = node.index();
        let i = id % self.nx;
        let j = (id / self.nx) % self.ny;
        let k = id / (self.nx * self.ny);
        GridIndex::new(i, j, k)
    }

    /// Current coordinates of a node.
    #[inline]
    pub fn position(&self, node: NodeId) -> [f64; 3] {
        self.coords[node.index()]
    }

    /// Sets the coordinates of a node (used by the variation models).
    #[inline]
    pub fn set_position(&mut self, node: NodeId, position: [f64; 3]) {
        self.coords[node.index()] = position;
    }

    /// Displaces a node along one axis by `delta`.
    #[inline]
    pub fn displace(&mut self, node: NodeId, axis: Axis, delta: f64) {
        self.coords[node.index()][axis.as_usize()] += delta;
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link by id.
    #[inline]
    pub fn link(&self, link: LinkId) -> Link {
        self.links[link.index()]
    }

    /// Neighbour of `node` in direction `axis`, `forward` (increasing index)
    /// or backward; `None` at the domain boundary.
    pub fn neighbor(&self, node: NodeId, axis: Axis, forward: bool) -> Option<NodeId> {
        let g = self.grid_index(node);
        let (i, j, k) = (g.i as isize, g.j as isize, g.k as isize);
        let delta: isize = if forward { 1 } else { -1 };
        let (ni, nj, nk) = match axis {
            Axis::X => (i + delta, j, k),
            Axis::Y => (i, j + delta, k),
            Axis::Z => (i, j, k + delta),
        };
        if ni < 0
            || nj < 0
            || nk < 0
            || ni >= self.nx as isize
            || nj >= self.ny as isize
            || nk >= self.nz as isize
        {
            None
        } else {
            Some(self.node_at(GridIndex::new(ni as usize, nj as usize, nk as usize)))
        }
    }

    /// Returns `true` when the node lies on the outer boundary of the domain.
    pub fn is_boundary(&self, node: NodeId) -> bool {
        let g = self.grid_index(node);
        g.i == 0
            || g.j == 0
            || g.k == 0
            || g.i == self.nx - 1
            || g.j == self.ny - 1
            || g.k == self.nz - 1
    }

    /// Euclidean length of a link computed from the current coordinates.
    pub fn link_length(&self, link: LinkId) -> f64 {
        let l = self.link(link);
        let a = self.position(l.from);
        let b = self.position(l.to);
        let mut s = 0.0;
        for d in 0..3 {
            s += (a[d] - b[d]) * (a[d] - b[d]);
        }
        s.sqrt()
    }

    /// Length of the dual (control-volume) cell of a node along one axis:
    /// half the distance between its two axis neighbours, one-sided at the
    /// domain boundary.
    pub fn dual_length(&self, node: NodeId, axis: Axis) -> f64 {
        let here = self.position(node)[axis.as_usize()];
        let fwd = self
            .neighbor(node, axis, true)
            .map(|n| self.position(n)[axis.as_usize()])
            .unwrap_or(here);
        let bwd = self
            .neighbor(node, axis, false)
            .map(|n| self.position(n)[axis.as_usize()])
            .unwrap_or(here);
        (0.5 * (fwd - bwd)).max(0.0)
    }

    /// Dual (control-volume) face area associated with a link: the product of
    /// the endpoint-averaged dual lengths in the two perpendicular
    /// directions.
    pub fn dual_area(&self, link: LinkId) -> f64 {
        let l = self.link(link);
        let [p, q] = l.axis.perpendicular();
        let area_of = |node: NodeId| self.dual_length(node, p) * self.dual_length(node, q);
        0.5 * (area_of(l.from) + area_of(l.to))
    }

    /// Dual (node) volume: product of the dual lengths along the three axes.
    pub fn node_volume(&self, node: NodeId) -> f64 {
        Axis::ALL
            .into_iter()
            .map(|axis| self.dual_length(node, axis))
            .product()
    }

    /// Bounding box `(min, max)` of the current node coordinates.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        let mut min = [f64::INFINITY; 3];
        let mut max = [f64::NEG_INFINITY; 3];
        for c in &self.coords {
            for d in 0..3 {
                min[d] = min[d].min(c[d]);
                max[d] = max[d].max(c[d]);
            }
        }
        (min, max)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.link_count()).map(LinkId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_mesh(n: usize) -> CartesianMesh {
        let lines: Vec<f64> = (0..n).map(|i| i as f64).collect();
        CartesianMesh::from_grid_lines(lines.clone(), lines.clone(), lines)
    }

    #[test]
    fn counts_match_tensor_grid() {
        let m = unit_mesh(4);
        assert_eq!(m.node_count(), 64);
        // links per axis: 3*4*4 = 48 each
        assert_eq!(m.link_count(), 3 * 48);
        let (lx, ly, lz) = m.link_counts_by_axis();
        assert_eq!((lx, ly, lz), (48, 48, 48));
    }

    #[test]
    fn index_roundtrip() {
        let m = unit_mesh(5);
        for id in 0..m.node_count() {
            let node = NodeId(id);
            let g = m.grid_index(node);
            assert_eq!(m.node_at(g), node);
        }
    }

    #[test]
    fn neighbors_and_boundary() {
        let m = unit_mesh(3);
        let center = m.node_at(GridIndex::new(1, 1, 1));
        assert!(!m.is_boundary(center));
        assert!(m.is_boundary(m.node_at(GridIndex::new(0, 1, 1))));
        assert_eq!(
            m.neighbor(center, Axis::X, true),
            Some(m.node_at(GridIndex::new(2, 1, 1)))
        );
        assert_eq!(
            m.neighbor(m.node_at(GridIndex::new(2, 1, 1)), Axis::X, true),
            None
        );
    }

    #[test]
    fn geometric_quantities_on_uniform_grid() {
        let m = unit_mesh(4);
        let inner = m.node_at(GridIndex::new(1, 1, 1));
        assert!((m.node_volume(inner) - 1.0).abs() < 1e-12);
        // A corner node has half-size spacings in every direction.
        let corner = m.node_at(GridIndex::new(0, 0, 0));
        assert!((m.node_volume(corner) - 0.125).abs() < 1e-12);
        // Every link has unit length; interior link dual area is 1.
        for l in m.link_ids() {
            assert!((m.link_length(l) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn volumes_sum_to_domain_volume() {
        let m = unit_mesh(5); // domain 4x4x4 = 64
        let total: f64 = m.node_ids().map(|n| m.node_volume(n)).sum();
        assert!((total - 64.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn displacement_changes_geometry() {
        let mut m = unit_mesh(3);
        let node = m.node_at(GridIndex::new(1, 1, 1));
        let before = m.node_volume(node);
        m.displace(node, Axis::X, 0.3);
        let after_pos = m.position(node);
        assert!((after_pos[0] - 1.3).abs() < 1e-12);
        // Volume of the displaced node itself is unchanged to first order
        // (spacing between neighbours is unchanged), but link lengths change.
        let link_left = m
            .link_ids()
            .find(|&l| {
                let link = m.link(l);
                link.axis == Axis::X && link.to == node
            })
            .unwrap();
        assert!((m.link_length(link_left) - 1.3).abs() < 1e-12);
        let _ = before;
    }

    #[test]
    fn bounding_box_covers_grid() {
        let m =
            CartesianMesh::from_grid_lines(vec![0.0, 2.0, 5.0], vec![-1.0, 1.0], vec![0.0, 10.0]);
        let (lo, hi) = m.bounding_box();
        assert_eq!(lo, [0.0, -1.0, 0.0]);
        assert_eq!(hi, [5.0, 1.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_grid_lines_panic() {
        let _ = CartesianMesh::from_grid_lines(vec![0.0, 1.0, 0.5], vec![0.0, 1.0], vec![0.0, 1.0]);
    }
}
