//! Material tags for mesh nodes.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Material occupying (the dual cell of) a mesh node.
///
/// The paper's hybrid structures mix exactly these three classes: metal
/// (TSV barrels, plugs, traces), insulator (inter-layer dielectric, liner)
/// and semiconductor (the doped silicon substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Highly conductive metal (copper/tungsten plug, trace, TSV fill).
    Metal,
    /// Dielectric / insulating material (SiO₂-like).
    Insulator,
    /// Doped semiconductor (silicon substrate).
    Semiconductor,
}

impl Material {
    /// Returns `true` for [`Material::Metal`].
    pub fn is_metal(self) -> bool {
        matches!(self, Material::Metal)
    }

    /// Returns `true` for [`Material::Semiconductor`].
    pub fn is_semiconductor(self) -> bool {
        matches!(self, Material::Semiconductor)
    }

    /// Returns `true` for [`Material::Insulator`].
    pub fn is_insulator(self) -> bool {
        matches!(self, Material::Insulator)
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Material::Metal => write!(f, "metal"),
            Material::Insulator => write!(f, "insulator"),
            Material::Semiconductor => write!(f, "semiconductor"),
        }
    }
}

/// Per-node material assignment for a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterialMap {
    materials: Vec<Material>,
}

impl MaterialMap {
    /// Creates a map with every node set to `default`.
    pub fn new(node_count: usize, default: Material) -> Self {
        Self {
            materials: vec![default; node_count],
        }
    }

    /// Creates a map from an explicit per-node vector.
    pub fn from_vec(materials: Vec<Material>) -> Self {
        Self { materials }
    }

    /// Number of nodes covered by the map.
    pub fn len(&self) -> usize {
        self.materials.len()
    }

    /// Returns `true` if the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.materials.is_empty()
    }

    /// Material of a node.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    #[inline]
    pub fn material(&self, node: NodeId) -> Material {
        self.materials[node.index()]
    }

    /// Sets the material of a node.
    ///
    /// # Panics
    /// Panics if the node is out of range.
    #[inline]
    pub fn set(&mut self, node: NodeId, material: Material) {
        self.materials[node.index()] = material;
    }

    /// All node ids with the given material.
    // vaem-lint: cold materializes the node list during topology setup
    pub fn nodes_of(&self, material: Material) -> Vec<NodeId> {
        self.materials
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m == material).then_some(NodeId(i)))
            .collect()
    }

    /// Number of nodes of each material `(metal, insulator, semiconductor)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut metal = 0;
        let mut insulator = 0;
        let mut semi = 0;
        for m in &self.materials {
            match m {
                Material::Metal => metal += 1,
                Material::Insulator => insulator += 1,
                Material::Semiconductor => semi += 1,
            }
        }
        (metal, insulator, semi)
    }

    /// Immutable access to the underlying per-node vector.
    pub fn as_slice(&self) -> &[Material] {
        &self.materials
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_and_display() {
        assert!(Material::Metal.is_metal());
        assert!(!Material::Metal.is_semiconductor());
        assert!(Material::Semiconductor.is_semiconductor());
        assert!(Material::Insulator.is_insulator());
        assert_eq!(Material::Semiconductor.to_string(), "semiconductor");
    }

    #[test]
    fn map_set_get_and_counts() {
        let mut map = MaterialMap::new(5, Material::Insulator);
        map.set(NodeId(0), Material::Metal);
        map.set(NodeId(4), Material::Semiconductor);
        assert_eq!(map.material(NodeId(0)), Material::Metal);
        assert_eq!(map.material(NodeId(1)), Material::Insulator);
        assert_eq!(map.counts(), (1, 3, 1));
        assert_eq!(map.nodes_of(Material::Semiconductor), vec![NodeId(4)]);
        assert_eq!(map.len(), 5);
    }

    #[test]
    fn from_vec_roundtrip() {
        let v = vec![Material::Metal, Material::Semiconductor];
        let map = MaterialMap::from_vec(v.clone());
        assert_eq!(map.as_slice(), &v[..]);
    }
}
