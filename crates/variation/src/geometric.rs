//! Geometric (surface-roughness) variation models.
//!
//! Section III.A of the paper: interface nodes receive correlated Gaussian
//! offsets along the facet normal. Two ways of transferring those offsets to
//! the mesh are provided:
//!
//! * [`GeometricModel::Traditional`] — only the interface nodes move (the
//!   model of the earlier variational A–V solver). When the offset exceeds
//!   the local grid pitch, nodes cross their neighbours and the mesh is
//!   destroyed (Fig. 1a).
//! * [`GeometricModel::ContinuousSurface`] — the paper's smart model: the
//!   interface offset is propagated along the perturbation direction, with a
//!   linear blend between neighbouring interfaces (eq. 6) and a linear decay
//!   towards the domain boundary (eq. 7), so all nodes move continuously and
//!   crossings are avoided (Fig. 1b).

use std::collections::BTreeMap;
use vaem_mesh::{Axis, CartesianMesh, Facet, NodeId};

/// Which model is used to transfer interface offsets onto the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeometricModel {
    /// Displace only the interface nodes (baseline, breaks at large σ).
    Traditional,
    /// The paper's continuous-surface-variation propagation (eqs. 6–7).
    #[default]
    ContinuousSurface,
}

/// Offsets (µm, along the facet normal) for the nodes of one rough facet.
///
/// `offsets[i]` applies to `facet.nodes[i]`.
#[derive(Debug, Clone)]
pub struct FacetPerturbation<'a> {
    /// The facet being roughened.
    pub facet: &'a Facet,
    /// Normal offsets, one per facet node.
    pub offsets: Vec<f64>,
}

impl<'a> FacetPerturbation<'a> {
    /// Creates a perturbation, checking the length.
    ///
    /// # Panics
    /// Panics if `offsets.len()` differs from the facet node count.
    pub fn new(facet: &'a Facet, offsets: Vec<f64>) -> Self {
        assert_eq!(
            offsets.len(),
            facet.nodes.len(),
            "facet {} has {} nodes but {} offsets were supplied",
            facet.name,
            facet.nodes.len(),
            offsets.len()
        );
        Self { facet, offsets }
    }
}

/// Applies surface-roughness perturbations to the mesh with the chosen model.
///
/// All perturbations sharing a normal axis are treated together so that the
/// continuous model can interpolate between interfaces crossed by the same
/// grid column (eq. 6) and decay towards the domain boundary outside the
/// outermost interfaces (eq. 7).
///
/// # Example
/// ```
/// use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
/// use vaem_mesh::quality::assess;
/// use vaem_variation::{apply_roughness, FacetPerturbation, GeometricModel};
///
/// let structure = build_metalplug_structure(&MetalPlugConfig::default());
/// let facet = structure.facet("plug1_interface").unwrap();
/// let offsets = vec![0.4; facet.nodes.len()];
///
/// let mut mesh = structure.mesh.clone();
/// apply_roughness(
///     &mut mesh,
///     GeometricModel::ContinuousSurface,
///     &[FacetPerturbation::new(facet, offsets)],
/// );
/// assert!(assess(&mesh, 1e-9).is_valid());
/// ```
pub fn apply_roughness(
    mesh: &mut CartesianMesh,
    model: GeometricModel,
    perturbations: &[FacetPerturbation<'_>],
) {
    match model {
        GeometricModel::Traditional => {
            for p in perturbations {
                let axis = p.facet.normal;
                for (&node, &delta) in p.facet.nodes.iter().zip(p.offsets.iter()) {
                    mesh.displace(node, axis, delta);
                }
            }
        }
        GeometricModel::ContinuousSurface => {
            apply_continuous(mesh, perturbations);
        }
    }
}

/// Perturbed interface crossings of one grid column, one
/// `(axis grid index, coordinate along the axis, offset)` entry per crossing.
type ColumnCrossings = Vec<(usize, f64, f64)>;

/// Continuous-surface propagation.
///
/// For every grid column along a perturbation axis we collect the perturbed
/// interface nodes it crosses, then displace every node of the column:
/// * between two interfaces — linear blend of the two interface offsets
///   (the paper's eq. 6),
/// * outside the outermost interfaces — linear decay of the nearest interface
///   offset towards the domain boundary (the paper's eq. 7),
/// * on an interface — the interface offset itself.
fn apply_continuous(mesh: &mut CartesianMesh, perturbations: &[FacetPerturbation<'_>]) {
    for axis in Axis::ALL {
        // column key (perpendicular grid indices) -> crossings along the axis
        let mut columns: BTreeMap<(usize, usize), ColumnCrossings> = BTreeMap::new();
        for p in perturbations {
            if p.facet.normal != axis {
                continue;
            }
            for (&node, &delta) in p.facet.nodes.iter().zip(p.offsets.iter()) {
                let g = mesh.grid_index(node);
                let key = match axis {
                    Axis::X => (g.j, g.k),
                    Axis::Y => (g.i, g.k),
                    Axis::Z => (g.i, g.j),
                };
                let coord = mesh.position(node)[axis.as_usize()];
                columns
                    .entry(key)
                    .or_default()
                    .push((g.along(axis), coord, delta));
            }
        }
        if columns.is_empty() {
            continue;
        }

        let (lo_bound, hi_bound) = {
            let (lo, hi) = mesh.bounding_box();
            (lo[axis.as_usize()], hi[axis.as_usize()])
        };
        let (nx, ny, nz) = mesh.dims();
        let axis_len = match axis {
            Axis::X => nx,
            Axis::Y => ny,
            Axis::Z => nz,
        };

        for (key, mut interfaces) in columns {
            interfaces.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("coordinate is NaN"));
            // Walk the whole column and displace each node.
            for s in 0..axis_len {
                let node = node_on_column(mesh, axis, key, s);
                let x_i = mesh.position(node)[axis.as_usize()];
                let delta = column_offset(&interfaces, x_i, s, lo_bound, hi_bound);
                if delta != 0.0 {
                    mesh.displace(node, axis, delta);
                }
            }
        }
    }
}

/// Offset of a column node located at coordinate `x_i` (grid slot `slot`),
/// given the sorted interface list `(grid slot, coordinate, offset)`.
fn column_offset(
    interfaces: &[(usize, f64, f64)],
    x_i: f64,
    slot: usize,
    lo_bound: f64,
    hi_bound: f64,
) -> f64 {
    // Exact interface node?
    if let Some(&(_, _, xi)) = interfaces.iter().find(|&&(s, _, _)| s == slot) {
        return xi;
    }
    let first = interfaces[0];
    let last = interfaces[interfaces.len() - 1];
    if x_i < first.1 {
        // Outer region on the low side: decay towards the lower boundary (eq. 7).
        let (_, x_l, xi_l) = first;
        let denom = x_l - lo_bound;
        if denom.abs() < 1e-30 {
            return 0.0;
        }
        return xi_l * (x_i - lo_bound) / denom;
    }
    if x_i > last.1 {
        // Outer region on the high side (eq. 7).
        let (_, x_r, xi_r) = last;
        let denom = hi_bound - x_r;
        if denom.abs() < 1e-30 {
            return 0.0;
        }
        return xi_r * (hi_bound - x_i) / denom;
    }
    // Inner region: find the bracketing interfaces and blend (eq. 6).
    for w in interfaces.windows(2) {
        let (_, x_l, xi_l) = w[0];
        let (_, x_r, xi_r) = w[1];
        if x_i >= x_l && x_i <= x_r {
            let denom = x_r - x_l;
            if denom.abs() < 1e-30 {
                return 0.5 * (xi_l + xi_r);
            }
            return xi_r * (x_i - x_l) / denom + xi_l * (x_r - x_i) / denom;
        }
    }
    0.0
}

/// Node at grid slot `s` of the column identified by `key` along `axis`.
fn node_on_column(mesh: &CartesianMesh, axis: Axis, key: (usize, usize), s: usize) -> NodeId {
    use vaem_mesh::GridIndex;
    let idx = match axis {
        Axis::X => GridIndex::new(s, key.0, key.1),
        Axis::Y => GridIndex::new(key.0, s, key.1),
        Axis::Z => GridIndex::new(key.0, key.1, s),
    };
    mesh.node_at(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_mesh::quality::assess;
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
    use vaem_mesh::structures::tsv::{build_tsv_structure, TsvConfig};

    #[test]
    fn traditional_model_moves_only_interface_nodes() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let facet = s.facet("plug1_interface").unwrap();
        let mut mesh = s.mesh.clone();
        let offsets = vec![0.2; facet.nodes.len()];
        apply_roughness(
            &mut mesh,
            GeometricModel::Traditional,
            &[FacetPerturbation::new(facet, offsets)],
        );
        let mut moved = 0;
        for n in mesh.node_ids() {
            let before = s.mesh.position(n);
            let after = mesh.position(n);
            if before != after {
                moved += 1;
                assert!(facet.nodes.contains(&n), "non-interface node moved");
            }
        }
        assert_eq!(moved, facet.nodes.len());
    }

    #[test]
    fn continuous_model_moves_neighbouring_nodes_too() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let facet = s.facet("plug1_interface").unwrap();
        let mut mesh = s.mesh.clone();
        let offsets = vec![0.2; facet.nodes.len()];
        apply_roughness(
            &mut mesh,
            GeometricModel::ContinuousSurface,
            &[FacetPerturbation::new(facet, offsets)],
        );
        let moved = mesh
            .node_ids()
            .filter(|&n| s.mesh.position(n) != mesh.position(n))
            .count();
        assert!(
            moved > facet.nodes.len(),
            "continuous model should propagate beyond the interface ({moved})"
        );
    }

    #[test]
    fn large_offsets_break_traditional_but_not_continuous() {
        // sigma_G = 0.5 µm in the paper is comparable to the 1 µm pitch; use
        // an offset well above the local pitch to provoke crossings.
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let facet = s.facet("plug1_interface").unwrap();
        let big: Vec<f64> = facet
            .nodes
            .iter()
            .enumerate()
            .map(|(i, _)| if i % 2 == 0 { 1.4 } else { -1.4 })
            .collect();

        let mut traditional = s.mesh.clone();
        apply_roughness(
            &mut traditional,
            GeometricModel::Traditional,
            &[FacetPerturbation::new(facet, big.clone())],
        );
        assert!(
            !assess(&traditional, 1e-9).is_valid(),
            "traditional model should break the mesh at this amplitude"
        );

        let mut continuous = s.mesh.clone();
        apply_roughness(
            &mut continuous,
            GeometricModel::ContinuousSurface,
            &[FacetPerturbation::new(facet, big)],
        );
        assert!(
            assess(&continuous, 1e-9).is_valid(),
            "continuous model must keep the mesh valid"
        );
    }

    #[test]
    fn interface_nodes_get_exactly_their_offsets_in_both_models() {
        let s = build_metalplug_structure(&MetalPlugConfig::default());
        let facet = s.facet("plug2_interface").unwrap();
        let offsets: Vec<f64> = (0..facet.nodes.len()).map(|i| 0.01 * i as f64).collect();
        for model in [
            GeometricModel::Traditional,
            GeometricModel::ContinuousSurface,
        ] {
            let mut mesh = s.mesh.clone();
            apply_roughness(
                &mut mesh,
                model,
                &[FacetPerturbation::new(facet, offsets.clone())],
            );
            for (&node, &delta) in facet.nodes.iter().zip(offsets.iter()) {
                let d = mesh.position(node)[2] - s.mesh.position(node)[2];
                assert!(
                    (d - delta).abs() < 1e-12,
                    "{model:?}: interface node moved by {d}, expected {delta}"
                );
            }
        }
    }

    #[test]
    fn tsv_opposite_walls_blend_inside_the_barrel() {
        let s = build_tsv_structure(&TsvConfig::coarse());
        let plus = s.facet("tsv1+x").unwrap();
        let minus = s.facet("tsv1-x").unwrap();
        let mut mesh = s.mesh.clone();
        // Push both walls outward by 0.3 µm.
        apply_roughness(
            &mut mesh,
            GeometricModel::ContinuousSurface,
            &[
                FacetPerturbation::new(plus, vec![0.3; plus.nodes.len()]),
                FacetPerturbation::new(minus, vec![-0.3; minus.nodes.len()]),
            ],
        );
        assert!(assess(&mesh, 1e-9).is_valid());
        // A node midway between the two walls moves by the blend of the two
        // offsets, which is ~0 for symmetric outward motion.
        let probe = mesh
            .node_ids()
            .find(|&n| {
                let p = s.mesh.position(n);
                let g = s.mesh.grid_index(n);
                let on_wall_col = plus.nodes.iter().chain(minus.nodes.iter()).any(|&m| {
                    let gm = s.mesh.grid_index(m);
                    gm.j == g.j && gm.k == g.k
                });
                on_wall_col
                    && (p[0]
                        - (s.mesh.position(plus.nodes[0])[0] + s.mesh.position(minus.nodes[0])[0])
                            / 2.0)
                        .abs()
                        < 0.8
            })
            .expect("probe node inside the barrel");
        let shift = mesh.position(probe)[0] - s.mesh.position(probe)[0];
        assert!(shift.abs() < 0.31, "mid-barrel shift {shift}");
    }

    #[test]
    #[should_panic(expected = "offsets were supplied")]
    fn mismatched_offsets_panic() {
        let s = build_metalplug_structure(&MetalPlugConfig::coarse());
        let facet = s.facet("plug1_interface").unwrap();
        let _ = FacetPerturbation::new(facet, vec![0.1; 3]);
    }
}
