//! Weighted principal factor analysis (wPFA) — Section III.C of the paper.
//!
//! The key idea: not every correlated variable matters equally for the output
//! quantity. The paper weights each variable by the influence derived from
//! the *nominal* solution — the panel charge for capacitance extraction, or
//! `w_i = J⁰_i · nodeVol_i` (eq. 9) for the coupled-domain current — before
//! decomposing, so that the retained factors concentrate on the variables
//! that actually drive the output. The reduced set is then mapped back with
//! `ξ = W⁻¹·U·ζ` (eq. 10).

use crate::VariableReduction;
use vaem_numeric::dense::{DMatrix, Svd};
use vaem_numeric::NumericError;

/// Weighted-PFA reduction.
///
/// Given the covariance `Σ` and the diagonal weights `w`, the symmetric
/// weighted covariance `W·Σ·W` is decomposed with an SVD, the leading
/// singular triplets capturing `energy_fraction` of the weighted energy are
/// kept, and the expansion is `ξ = W⁻¹·U_r·S_r^{1/2}·ζ`, so that the implied
/// covariance approximates `Σ` best in the weighted norm.
///
/// # Example
/// ```
/// use vaem_variation::{covariance_matrix, CorrelationKernel, Wpfa, VariableReduction};
/// let positions: Vec<[f64; 3]> = (0..12).map(|i| [0.25 * i as f64, 0.0, 0.0]).collect();
/// let cov = covariance_matrix(&positions, 0.5, CorrelationKernel::Gaussian { length: 1.5 });
/// // Only the first few nodes matter for the output:
/// let weights: Vec<f64> = (0..12).map(|i| if i < 4 { 1.0 } else { 1e-3 }).collect();
/// let wpfa = Wpfa::new(&cov, &weights, 0.99)?;
/// assert!(wpfa.reduced_dim() < 12);
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Wpfa {
    /// Mapping matrix `A = W⁻¹·U_r·S_r^{1/2}` (full_dim × reduced_dim).
    transform: DMatrix<f64>,
    captured_energy: f64,
}

impl Wpfa {
    /// Builds the weighted reduction keeping enough factors to capture
    /// `energy_fraction` of the weighted energy.
    ///
    /// Weights with very small magnitude are floored at `1e-12` times the
    /// maximum weight so that `W⁻¹` stays bounded.
    ///
    /// # Errors
    /// * [`NumericError::InvalidArgument`] for an invalid energy fraction,
    ///   mismatched weight length or all-zero weights.
    /// * Propagates SVD failures.
    pub fn new(
        covariance: &DMatrix<f64>,
        weights: &[f64],
        energy_fraction: f64,
    ) -> Result<Self, NumericError> {
        Self::new_capped(covariance, weights, energy_fraction, 0)
    }

    /// Builds the weighted reduction from the energy criterion, additionally
    /// capping the retained rank at `max_rank` (`0` disables the cap).
    ///
    /// The weighted covariance is decomposed exactly once, which matters at
    /// the paper's 128-variable group sizes where the SVD dominates.
    ///
    /// # Errors
    /// Same conditions as [`Wpfa::new`].
    pub fn new_capped(
        covariance: &DMatrix<f64>,
        weights: &[f64],
        energy_fraction: f64,
        max_rank: usize,
    ) -> Result<Self, NumericError> {
        if !(0.0..=1.0).contains(&energy_fraction) || energy_fraction == 0.0 {
            return Err(NumericError::InvalidArgument {
                detail: format!("energy fraction must be in (0, 1], got {energy_fraction}"),
            });
        }
        let (svd, w) = Self::weighted_svd(covariance, weights)?;
        let mut r = svd.count_for_energy(energy_fraction).max(1);
        if max_rank > 0 {
            r = r.min(max_rank);
        }
        Self::assemble(&svd, &w, r)
    }

    /// Builds the weighted reduction with an explicit number of factors.
    ///
    /// # Errors
    /// Same conditions as [`Wpfa::new`] plus an out-of-range rank.
    pub fn with_rank(
        covariance: &DMatrix<f64>,
        weights: &[f64],
        rank: usize,
    ) -> Result<Self, NumericError> {
        let n = covariance.rows();
        if rank == 0 || rank > n {
            return Err(NumericError::InvalidArgument {
                detail: format!("rank {rank} out of range for dimension {n}"),
            });
        }
        let (svd, w) = Self::weighted_svd(covariance, weights)?;
        Self::assemble(&svd, &w, rank)
    }

    fn weighted_svd(
        covariance: &DMatrix<f64>,
        weights: &[f64],
    ) -> Result<(Svd, Vec<f64>), NumericError> {
        let n = covariance.rows();
        if weights.len() != n {
            return Err(NumericError::InvalidArgument {
                detail: format!(
                    "weight length {} does not match covariance dimension {}",
                    weights.len(),
                    n
                ),
            });
        }
        let wmax = weights.iter().fold(0.0_f64, |m, w| m.max(w.abs()));
        if wmax == 0.0 {
            return Err(NumericError::InvalidArgument {
                detail: "all weights are zero".to_string(),
            });
        }
        let floor = wmax * 1e-12;
        let w: Vec<f64> = weights.iter().map(|v| v.abs().max(floor)).collect();
        // Symmetric weighted covariance W Σ W.
        let wsw = DMatrix::from_fn(n, n, |i, j| w[i] * covariance[(i, j)] * w[j]);
        let svd = Svd::new(&wsw)?;
        Ok((svd, w))
    }

    fn assemble(svd: &Svd, w: &[f64], rank: usize) -> Result<Self, NumericError> {
        let n = w.len();
        let u = svd.u();
        let sv = svd.singular_values();
        let mut transform = DMatrix::zeros(n, rank);
        for j in 0..rank {
            let scale = sv[j].max(0.0).sqrt();
            for i in 0..n {
                transform[(i, j)] = u[(i, j)] * scale / w[i];
            }
        }
        let total: f64 = sv.iter().sum();
        let captured: f64 = sv.iter().take(rank).sum();
        Ok(Self {
            transform,
            captured_energy: if total > 0.0 { captured / total } else { 1.0 },
        })
    }

    /// Fraction of the weighted energy captured by the retained factors.
    pub fn captured_energy(&self) -> f64 {
        self.captured_energy
    }
}

impl VariableReduction for Wpfa {
    fn full_dim(&self) -> usize {
        self.transform.rows()
    }

    fn reduced_dim(&self) -> usize {
        self.transform.cols()
    }

    fn expand(&self, zeta: &[f64]) -> Vec<f64> {
        assert_eq!(zeta.len(), self.reduced_dim(), "wpfa expand: wrong length");
        self.transform.matvec(zeta)
    }

    fn implied_covariance(&self) -> DMatrix<f64> {
        self.transform.matmul_transpose(&self.transform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covariance_matrix, CorrelationKernel, Pfa};

    fn cov(n: usize) -> DMatrix<f64> {
        let positions: Vec<[f64; 3]> = (0..n).map(|i| [0.3 * i as f64, 0.0, 0.0]).collect();
        covariance_matrix(
            &positions,
            0.5,
            CorrelationKernel::Exponential { length: 0.8 },
        )
    }

    /// Weighted covariance error, the metric wPFA is designed to minimize.
    fn weighted_error(model: &dyn VariableReduction, cov: &DMatrix<f64>, w: &[f64]) -> f64 {
        let implied = model.implied_covariance();
        let n = cov.rows();
        let mut err = 0.0;
        let mut norm = 0.0;
        for i in 0..n {
            for j in 0..n {
                let scale = w[i] * w[j];
                err += (scale * (implied[(i, j)] - cov[(i, j)])).powi(2);
                norm += (scale * cov[(i, j)]).powi(2);
            }
        }
        (err / norm).sqrt()
    }

    #[test]
    fn wpfa_beats_pfa_in_the_weighted_norm_at_equal_rank() {
        let n = 16;
        let c = cov(n);
        // Output only cares about the first quarter of the nodes.
        let w: Vec<f64> = (0..n).map(|i| if i < 4 { 1.0 } else { 1e-2 }).collect();
        let rank = 3;
        let wpfa = Wpfa::with_rank(&c, &w, rank).unwrap();
        let pfa = Pfa::with_rank(&c, rank).unwrap();
        let e_w = weighted_error(&wpfa, &c, &w);
        let e_p = weighted_error(&pfa, &c, &w);
        assert!(
            e_w <= e_p + 1e-12,
            "wPFA ({e_w}) should not be worse than PFA ({e_p}) in the weighted norm"
        );
    }

    #[test]
    fn uniform_weights_recover_pfa_behaviour() {
        let c = cov(10);
        let w = vec![1.0; 10];
        let wpfa = Wpfa::new(&c, &w, 0.95).unwrap();
        let pfa = Pfa::new(&c, 0.95).unwrap();
        // Same covariance and same truncation criterion: the number of
        // retained factors must match.
        assert_eq!(wpfa.reduced_dim(), pfa.reduced_dim());
        let diff = wpfa
            .implied_covariance()
            .sub(&pfa.implied_covariance())
            .frobenius_norm();
        assert!(diff / c.frobenius_norm() < 1e-6);
    }

    #[test]
    fn reduction_ratio_matches_paper_scale() {
        // The paper reduces 72 correlated doping variables to about 10 and
        // 128 to about 6 with strongly non-uniform weights. Reproduce the
        // qualitative behaviour: a smooth field with concentrated weights
        // compresses by an order of magnitude.
        let n = 64;
        let positions: Vec<[f64; 3]> = (0..n)
            .map(|i| [(i % 8) as f64 * 0.5, (i / 8) as f64 * 0.5, 0.0])
            .collect();
        let c = covariance_matrix(&positions, 0.1, CorrelationKernel::Gaussian { length: 1.5 });
        let w: Vec<f64> = (0..n).map(|i| ((i % 8) as f64 + 1.0).recip()).collect();
        let wpfa = Wpfa::new(&c, &w, 0.98).unwrap();
        assert!(
            wpfa.reduced_dim() <= n / 4,
            "kept {} of {n}",
            wpfa.reduced_dim()
        );
        assert!(wpfa.captured_energy() >= 0.98);
    }

    #[test]
    fn capped_construction_matches_explicit_rank() {
        let c = cov(14);
        let w: Vec<f64> = (0..14).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let uncapped = Wpfa::new(&c, &w, 0.999).unwrap();
        assert!(uncapped.reduced_dim() > 2);
        let capped = Wpfa::new_capped(&c, &w, 0.999, 2).unwrap();
        assert_eq!(capped.reduced_dim(), 2);
        let explicit = Wpfa::with_rank(&c, &w, 2).unwrap();
        let diff = capped
            .implied_covariance()
            .sub(&explicit.implied_covariance())
            .frobenius_norm();
        assert!(diff < 1e-12);
        let loose = Wpfa::new_capped(&c, &w, 0.999, 14).unwrap();
        assert_eq!(loose.reduced_dim(), uncapped.reduced_dim());
    }

    #[test]
    fn zero_weights_are_rejected_but_tiny_weights_are_floored() {
        let c = cov(5);
        assert!(Wpfa::new(&c, &[0.0; 5], 0.9).is_err());
        let w = vec![1.0, 1e-30, 1.0, 1.0, 1.0];
        let wpfa = Wpfa::new(&c, &w, 0.9).unwrap();
        assert!(wpfa.expand(&vec![0.5; wpfa.reduced_dim()]).len() == 5);
    }

    #[test]
    fn mismatched_weight_length_is_rejected() {
        let c = cov(4);
        assert!(Wpfa::new(&c, &[1.0; 3], 0.9).is_err());
    }
}
