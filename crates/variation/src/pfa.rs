//! Classical principal factor analysis (PFA) reduction.

use crate::VariableReduction;
use vaem_numeric::dense::{DMatrix, SymmetricEigen};
use vaem_numeric::NumericError;

/// Principal-factor-analysis reduction of a correlated Gaussian vector.
///
/// The covariance `Σ` is eigendecomposed, the leading eigenpairs capturing
/// `energy_fraction` of the total variance are kept, and the correlated
/// vector is represented as `ξ = V_r·Λ_r^{1/2}·ζ` with `ζ ~ N(0, I_r)`.
/// This is the baseline the paper's wPFA improves upon.
///
/// # Example
/// ```
/// use vaem_variation::{covariance_matrix, CorrelationKernel, Pfa, VariableReduction};
/// let positions: Vec<[f64; 3]> = (0..10).map(|i| [0.2 * i as f64, 0.0, 0.0]).collect();
/// let cov = covariance_matrix(&positions, 0.5, CorrelationKernel::Gaussian { length: 1.0 });
/// let pfa = Pfa::new(&cov, 0.99)?;
/// assert!(pfa.reduced_dim() < pfa.full_dim());
/// # Ok::<(), vaem_numeric::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pfa {
    /// Mapping matrix `A = V_r·Λ_r^{1/2}` (full_dim × reduced_dim).
    transform: DMatrix<f64>,
    captured_energy: f64,
}

impl Pfa {
    /// Builds the reduction keeping enough factors to capture
    /// `energy_fraction` of the total variance (trace of the covariance).
    ///
    /// # Errors
    /// Propagates eigendecomposition failures; returns
    /// [`NumericError::InvalidArgument`] when `energy_fraction` is outside
    /// `(0, 1]`.
    pub fn new(covariance: &DMatrix<f64>, energy_fraction: f64) -> Result<Self, NumericError> {
        Self::new_capped(covariance, energy_fraction, 0)
    }

    /// Builds the reduction from the energy criterion, additionally capping
    /// the retained rank at `max_rank` (`0` disables the cap).
    ///
    /// The covariance is eigendecomposed exactly once, which matters at the
    /// paper's 128-variable group sizes where the decomposition dominates
    /// the reduction cost.
    ///
    /// # Errors
    /// Same conditions as [`Pfa::new`].
    pub fn new_capped(
        covariance: &DMatrix<f64>,
        energy_fraction: f64,
        max_rank: usize,
    ) -> Result<Self, NumericError> {
        if !(0.0..=1.0).contains(&energy_fraction) || energy_fraction == 0.0 {
            return Err(NumericError::InvalidArgument {
                detail: format!("energy fraction must be in (0, 1], got {energy_fraction}"),
            });
        }
        let eig = SymmetricEigen::new(covariance)?;
        let mut r = eig.count_for_energy(energy_fraction).max(1);
        if max_rank > 0 {
            r = r.min(max_rank);
        }
        Self::from_eigen(&eig, r)
    }

    /// Builds the reduction with an explicit number of retained factors.
    ///
    /// # Errors
    /// Propagates eigendecomposition failures; returns
    /// [`NumericError::InvalidArgument`] when `rank` is zero or larger than
    /// the dimension.
    pub fn with_rank(covariance: &DMatrix<f64>, rank: usize) -> Result<Self, NumericError> {
        let n = covariance.rows();
        if rank == 0 || rank > n {
            return Err(NumericError::InvalidArgument {
                detail: format!("rank {rank} out of range for dimension {n}"),
            });
        }
        let eig = SymmetricEigen::new(covariance)?;
        Self::from_eigen(&eig, rank)
    }

    /// Assembles the mapping matrix from an existing eigendecomposition.
    fn from_eigen(eig: &SymmetricEigen, rank: usize) -> Result<Self, NumericError> {
        let values = eig.eigenvalues();
        let n = values.len();
        if rank == 0 || rank > n {
            return Err(NumericError::InvalidArgument {
                detail: format!("rank {rank} out of range for dimension {n}"),
            });
        }
        let vectors = eig.eigenvectors();
        let mut transform = DMatrix::zeros(n, rank);
        for j in 0..rank {
            let scale = values[j].max(0.0).sqrt();
            for i in 0..n {
                transform[(i, j)] = vectors[(i, j)] * scale;
            }
        }
        let total: f64 = values.iter().map(|l| l.abs()).sum();
        let captured: f64 = values.iter().take(rank).map(|l| l.abs()).sum();
        Ok(Self {
            transform,
            captured_energy: if total > 0.0 { captured / total } else { 1.0 },
        })
    }

    /// Fraction of the total variance captured by the retained factors.
    pub fn captured_energy(&self) -> f64 {
        self.captured_energy
    }
}

impl VariableReduction for Pfa {
    fn full_dim(&self) -> usize {
        self.transform.rows()
    }

    fn reduced_dim(&self) -> usize {
        self.transform.cols()
    }

    fn expand(&self, zeta: &[f64]) -> Vec<f64> {
        assert_eq!(zeta.len(), self.reduced_dim(), "pfa expand: wrong length");
        self.transform.matvec(zeta)
    }

    fn implied_covariance(&self) -> DMatrix<f64> {
        self.transform.matmul_transpose(&self.transform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covariance_matrix, CorrelationKernel};

    fn smooth_cov(n: usize) -> DMatrix<f64> {
        let positions: Vec<[f64; 3]> = (0..n).map(|i| [0.25 * i as f64, 0.0, 0.0]).collect();
        covariance_matrix(&positions, 0.5, CorrelationKernel::Gaussian { length: 2.0 })
    }

    #[test]
    fn strongly_correlated_field_compresses_hard() {
        let cov = smooth_cov(20);
        let pfa = Pfa::new(&cov, 0.99).unwrap();
        assert!(pfa.reduced_dim() <= 5, "kept {}", pfa.reduced_dim());
        assert!(pfa.captured_energy() >= 0.99);
    }

    #[test]
    fn implied_covariance_converges_with_rank() {
        let cov = smooth_cov(12);
        let low = Pfa::with_rank(&cov, 1).unwrap();
        let high = Pfa::with_rank(&cov, 12).unwrap();
        let err_low = low.implied_covariance().sub(&cov).frobenius_norm();
        let err_high = high.implied_covariance().sub(&cov).frobenius_norm();
        assert!(err_high < err_low);
        assert!(err_high < 1e-8);
    }

    #[test]
    fn expand_length_and_variance_scale() {
        let cov = smooth_cov(8);
        let pfa = Pfa::new(&cov, 0.95).unwrap();
        let zeta = vec![1.0; pfa.reduced_dim()];
        let xi = pfa.expand(&zeta);
        assert_eq!(xi.len(), 8);
        // The first factor dominates, so xi should have magnitude ~sigma.
        assert!(xi.iter().any(|v| v.abs() > 0.1));
    }

    #[test]
    fn capped_construction_matches_explicit_rank() {
        let cov = smooth_cov(16);
        let uncapped = Pfa::new(&cov, 0.999).unwrap();
        assert!(uncapped.reduced_dim() > 2);
        let capped = Pfa::new_capped(&cov, 0.999, 2).unwrap();
        assert_eq!(capped.reduced_dim(), 2);
        let explicit = Pfa::with_rank(&cov, 2).unwrap();
        let diff = capped
            .implied_covariance()
            .sub(&explicit.implied_covariance())
            .frobenius_norm();
        assert!(diff < 1e-12);
        // A cap above the energy rank changes nothing.
        let loose = Pfa::new_capped(&cov, 0.999, 16).unwrap();
        assert_eq!(loose.reduced_dim(), uncapped.reduced_dim());
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let cov = smooth_cov(4);
        assert!(Pfa::new(&cov, 0.0).is_err());
        assert!(Pfa::new(&cov, 1.5).is_err());
        assert!(Pfa::with_rank(&cov, 0).is_err());
        assert!(Pfa::with_rank(&cov, 9).is_err());
    }

    #[test]
    fn independent_variables_do_not_compress() {
        let positions: Vec<[f64; 3]> = (0..6).map(|i| [i as f64 * 10.0, 0.0, 0.0]).collect();
        let cov = covariance_matrix(
            &positions,
            1.0,
            CorrelationKernel::Exponential { length: 0.01 },
        );
        let pfa = Pfa::new(&cov, 0.99).unwrap();
        assert_eq!(pfa.reduced_dim(), 6);
    }
}
