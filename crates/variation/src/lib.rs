//! Process-variation modelling for the VAEM coupled solver.
//!
//! The paper studies two variation classes acting simultaneously on hybrid
//! metal/semiconductor structures:
//!
//! * **Surface roughness** on material interfaces — correlated Gaussian
//!   perturbations of the interface-node coordinates, applied to the mesh
//!   either with the *traditional* model (only interface nodes move, which
//!   breaks the mesh at large σ) or with the paper's *continuous surface
//!   variation* (CSV) model that propagates the perturbation to neighbouring
//!   nodes (Section III.A, eqs. (6)–(7)).
//! * **Random doping fluctuation (RDF)** — correlated relative perturbation
//!   of the donor concentration at semiconductor nodes.
//!
//! Both classes generate many correlated random variables; the paper reduces
//! them with principal factor analysis ([`Pfa`]) or the weighted variant
//! ([`Wpfa`], Section III.C, eqs. (9)–(10)) before handing the independent
//! factors to the stochastic collocation method.
//!
//! # Example
//!
//! ```
//! use vaem_variation::{CorrelationKernel, covariance_matrix, Pfa, VariableReduction};
//!
//! // Five points on a line, smoothly correlated over a long length.
//! let positions: Vec<[f64; 3]> = (0..5).map(|i| [i as f64, 0.0, 0.0]).collect();
//! let cov = covariance_matrix(&positions, 0.1, CorrelationKernel::Gaussian { length: 4.0 });
//! let pfa = Pfa::new(&cov, 0.95)?;
//! assert!(pfa.reduced_dim() < 5);
//! let xi = pfa.expand(&vec![1.0; pfa.reduced_dim()]);
//! assert_eq!(xi.len(), 5);
//! # Ok::<(), vaem_numeric::NumericError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod correlation;
pub mod geometric;
mod pfa;
mod rdf;
mod reduction;
mod sampling;
mod wpfa;

pub use correlation::{covariance_matrix, CorrelationKernel};
pub use geometric::{apply_roughness, FacetPerturbation, GeometricModel};
pub use pfa::Pfa;
pub use rdf::DopingVariationSpec;
pub use reduction::{FullRankGaussian, VariableReduction};
pub use sampling::{standard_normal, standard_normal_vector};
pub use wpfa::Wpfa;
