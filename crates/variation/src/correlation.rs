//! Spatial correlation kernels and covariance assembly.
//!
//! Both the surface-roughness and the doping-fluctuation variables are
//! modelled as zero-mean multivariate Gaussians whose covariance follows a
//! spatial correlation kernel with correlation length `η` (the paper uses
//! `η = 0.7 µm` for roughness and `η = 0.5 µm` for RDF).

use vaem_numeric::dense::DMatrix;

/// Spatial correlation kernel `ρ(r)` as a function of distance `r` (µm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrelationKernel {
    /// Exponential kernel `exp(−r/η)`.
    Exponential {
        /// Correlation length η (µm).
        length: f64,
    },
    /// Squared-exponential (Gaussian) kernel `exp(−r²/η²)`.
    Gaussian {
        /// Correlation length η (µm).
        length: f64,
    },
    /// No spatial correlation (identity covariance).
    Independent,
}

impl CorrelationKernel {
    /// Correlation between two points separated by distance `r`.
    pub fn correlation(&self, r: f64) -> f64 {
        match *self {
            CorrelationKernel::Exponential { length } => (-r / length).exp(),
            CorrelationKernel::Gaussian { length } => (-(r * r) / (length * length)).exp(),
            CorrelationKernel::Independent => {
                if r == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// Assembles the covariance matrix `Σ_ij = σ²·ρ(‖x_i − x_j‖)` for a set of
/// node positions.
///
/// # Example
/// ```
/// use vaem_variation::{covariance_matrix, CorrelationKernel};
/// let pos = vec![[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]];
/// let cov = covariance_matrix(&pos, 0.5, CorrelationKernel::Exponential { length: 1.0 });
/// assert!((cov[(0, 0)] - 0.25).abs() < 1e-12);
/// assert!(cov[(0, 1)] < cov[(0, 0)]);
/// assert!((cov[(0, 1)] - cov[(1, 0)]).abs() < 1e-15);
/// ```
pub fn covariance_matrix(
    positions: &[[f64; 3]],
    sigma: f64,
    kernel: CorrelationKernel,
) -> DMatrix<f64> {
    let n = positions.len();
    DMatrix::from_fn(n, n, |i, j| {
        let d = distance(positions[i], positions[j]);
        sigma * sigma * kernel.correlation(d)
    })
}

fn distance(a: [f64; 3], b: [f64; 3]) -> f64 {
    let mut s = 0.0;
    for d in 0..3 {
        s += (a[d] - b[d]) * (a[d] - b[d]);
    }
    s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_numeric::dense::SymmetricEigen;

    #[test]
    fn kernels_are_one_at_zero_and_decay() {
        for k in [
            CorrelationKernel::Exponential { length: 0.7 },
            CorrelationKernel::Gaussian { length: 0.7 },
            CorrelationKernel::Independent,
        ] {
            assert_eq!(k.correlation(0.0), 1.0);
            assert!(k.correlation(5.0) < 0.01);
        }
        let e = CorrelationKernel::Exponential { length: 1.0 };
        assert!(e.correlation(0.5) > e.correlation(1.5));
    }

    #[test]
    fn covariance_is_symmetric_positive_semidefinite() {
        let positions: Vec<[f64; 3]> = (0..8)
            .map(|i| [(i % 4) as f64, (i / 4) as f64, 0.0])
            .collect();
        let cov = covariance_matrix(&positions, 0.5, CorrelationKernel::Gaussian { length: 0.7 });
        assert!(cov.is_symmetric(1e-14));
        let eig = SymmetricEigen::new(&cov).unwrap();
        assert!(eig.eigenvalues().iter().all(|&l| l > -1e-10));
    }

    #[test]
    fn independent_kernel_gives_diagonal_covariance() {
        let positions = vec![[0.0; 3], [1.0, 0.0, 0.0], [0.0, 2.0, 0.0]];
        let cov = covariance_matrix(&positions, 0.1, CorrelationKernel::Independent);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 0.01 } else { 0.0 };
                assert!((cov[(i, j)] - expected).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn shorter_correlation_length_decorrelates_faster() {
        let positions = vec![[0.0; 3], [1.0, 0.0, 0.0]];
        let tight = covariance_matrix(
            &positions,
            1.0,
            CorrelationKernel::Exponential { length: 0.2 },
        );
        let loose = covariance_matrix(
            &positions,
            1.0,
            CorrelationKernel::Exponential { length: 5.0 },
        );
        assert!(tight[(0, 1)] < loose[(0, 1)]);
    }
}
