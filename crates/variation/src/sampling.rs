//! Standard-normal sampling (Box–Muller) on top of any [`rand::Rng`].
//!
//! Only uniform variates are taken from `rand`; the Gaussian transform is
//! done locally so that no additional distribution crate is needed.

use rand::Rng;

/// Draws one standard-normal sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a vector of independent standard-normal samples.
pub fn standard_normal_vector<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<f64> {
    (0..len).map(|_| standard_normal(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vaem_numeric::stats::RunningStats;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut stats = RunningStats::new();
        let mut kurtosis_acc = 0.0;
        let n = 200_000;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            stats.push(x);
            kurtosis_acc += x.powi(4);
        }
        assert!(stats.mean().abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.sample_variance() - 1.0).abs() < 0.02,
            "variance {}",
            stats.sample_variance()
        );
        // Fourth moment of N(0,1) is 3.
        let kurt = kurtosis_acc / n as f64;
        assert!((kurt - 3.0).abs() < 0.1, "kurtosis {kurt}");
    }

    #[test]
    fn vector_has_requested_length_and_no_nans() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = standard_normal_vector(&mut rng, 1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = standard_normal_vector(&mut StdRng::seed_from_u64(3), 10);
        let b = standard_normal_vector(&mut StdRng::seed_from_u64(3), 10);
        assert_eq!(a, b);
    }
}
