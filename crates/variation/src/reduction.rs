//! Common interface for variable-reduction schemes.

use vaem_numeric::dense::{Cholesky, DMatrix};
use vaem_numeric::NumericError;

/// Maps a reduced vector of independent standard normals `ζ` to the full
/// correlated variation vector `ξ`.
///
/// Implemented by [`crate::Pfa`] (classical principal factor analysis),
/// [`crate::Wpfa`] (the paper's weighted PFA) and [`FullRankGaussian`]
/// (no reduction — used by the Monte-Carlo reference).
///
/// `Send + Sync` is required so reductions can be shared by the parallel
/// sample sweeps; implementations are plain numeric data.
pub trait VariableReduction: Send + Sync {
    /// Number of original correlated variables.
    fn full_dim(&self) -> usize;

    /// Number of retained independent factors.
    fn reduced_dim(&self) -> usize;

    /// Expands a reduced vector `ζ` (length [`VariableReduction::reduced_dim`])
    /// into the full variation vector `ξ` (length
    /// [`VariableReduction::full_dim`]).
    ///
    /// # Panics
    /// Implementations panic when `zeta` has the wrong length.
    fn expand(&self, zeta: &[f64]) -> Vec<f64>;

    /// Covariance implied by the reduction, `A·Aᵀ` where `ξ = A·ζ`; used in
    /// tests to quantify the truncation error.
    fn implied_covariance(&self) -> DMatrix<f64>;
}

/// Exact (full-rank) Gaussian representation via the Cholesky factor of the
/// covariance: `ξ = L·ζ` with as many factors as variables.
#[derive(Debug, Clone)]
pub struct FullRankGaussian {
    chol: Cholesky,
}

impl FullRankGaussian {
    /// Builds the exact representation from a covariance matrix.
    ///
    /// # Errors
    /// Returns an error if the covariance is not (numerically) positive
    /// semi-definite even after regularization.
    pub fn new(covariance: &DMatrix<f64>) -> Result<Self, NumericError> {
        Ok(Self {
            chol: Cholesky::new_regularized(covariance)?,
        })
    }
}

impl VariableReduction for FullRankGaussian {
    fn full_dim(&self) -> usize {
        self.chol.dim()
    }

    fn reduced_dim(&self) -> usize {
        self.chol.dim()
    }

    fn expand(&self, zeta: &[f64]) -> Vec<f64> {
        self.chol.correlate(zeta)
    }

    fn implied_covariance(&self) -> DMatrix<f64> {
        let l = self.chol.factor();
        l.matmul_transpose(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{covariance_matrix, CorrelationKernel};

    fn cov5() -> DMatrix<f64> {
        let positions: Vec<[f64; 3]> = (0..5).map(|i| [i as f64 * 0.5, 0.0, 0.0]).collect();
        covariance_matrix(
            &positions,
            0.3,
            CorrelationKernel::Exponential { length: 1.0 },
        )
    }

    #[test]
    fn full_rank_reproduces_covariance_exactly() {
        let cov = cov5();
        let fr = FullRankGaussian::new(&cov).unwrap();
        assert_eq!(fr.full_dim(), 5);
        assert_eq!(fr.reduced_dim(), 5);
        let err = fr.implied_covariance().sub(&cov).frobenius_norm() / cov.frobenius_norm();
        assert!(err < 1e-6, "relative error {err}");
    }

    #[test]
    fn expand_maps_unit_vectors_to_cholesky_columns() {
        let cov = cov5();
        let fr = FullRankGaussian::new(&cov).unwrap();
        let mut e0 = vec![0.0; 5];
        e0[0] = 1.0;
        let xi = fr.expand(&e0);
        assert_eq!(xi.len(), 5);
        assert!((xi[0] - cov[(0, 0)].sqrt()).abs() < 1e-6);
    }
}
