//! Random doping fluctuation (RDF) specification.
//!
//! The paper models RDF as a correlated relative perturbation of the doping
//! profile on a subset of semiconductor nodes (10 % relative sigma with a
//! 0.5 µm correlation length in both examples).

use crate::{covariance_matrix, CorrelationKernel};
use vaem_mesh::{CartesianMesh, NodeId};
use vaem_numeric::dense::DMatrix;

/// Specification of a random-doping-fluctuation variation group.
#[derive(Debug, Clone)]
pub struct DopingVariationSpec {
    /// Semiconductor nodes carrying an RDF variable.
    pub nodes: Vec<NodeId>,
    /// Relative standard deviation of the doping perturbation (e.g. 0.10).
    pub relative_sigma: f64,
    /// Spatial correlation kernel (the paper uses η = 0.5 µm).
    pub kernel: CorrelationKernel,
}

impl DopingVariationSpec {
    /// Creates a specification.
    pub fn new(nodes: Vec<NodeId>, relative_sigma: f64, kernel: CorrelationKernel) -> Self {
        Self {
            nodes,
            relative_sigma,
            kernel,
        }
    }

    /// Convenience constructor matching the paper's setup: 10 % relative
    /// sigma, exponential correlation with length `eta` µm.
    pub fn paper_default(nodes: Vec<NodeId>, eta: f64) -> Self {
        Self::new(nodes, 0.10, CorrelationKernel::Exponential { length: eta })
    }

    /// Number of correlated RDF variables.
    pub fn dim(&self) -> usize {
        self.nodes.len()
    }

    /// Assembles the covariance matrix of the relative perturbations using
    /// the node positions of `mesh`.
    pub fn covariance(&self, mesh: &CartesianMesh) -> DMatrix<f64> {
        let positions: Vec<[f64; 3]> = self.nodes.iter().map(|&n| mesh.position(n)).collect();
        covariance_matrix(&positions, self.relative_sigma, self.kernel)
    }

    /// Pairs a vector of relative deltas with the node ids, ready for
    /// `vaem_physics::DopingProfile::perturbed`-style consumers (this crate
    /// does not depend on `vaem_physics`, so the link stays textual).
    ///
    /// # Panics
    /// Panics if `deltas.len()` differs from the node count.
    pub fn pair_with_nodes(&self, deltas: &[f64]) -> Vec<(NodeId, f64)> {
        assert_eq!(deltas.len(), self.nodes.len(), "delta length mismatch");
        self.nodes
            .iter()
            .copied()
            .zip(deltas.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vaem_mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};

    #[test]
    fn covariance_has_sigma_squared_diagonal() {
        let s = build_metalplug_structure(&MetalPlugConfig::coarse());
        let nodes: Vec<NodeId> = s.semiconductor_nodes().into_iter().take(20).collect();
        let spec = DopingVariationSpec::paper_default(nodes, 0.5);
        let cov = spec.covariance(&s.mesh);
        assert_eq!(cov.rows(), spec.dim());
        for i in 0..spec.dim() {
            assert!((cov[(i, i)] - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn pairing_preserves_order() {
        let nodes = vec![NodeId(5), NodeId(9)];
        let spec = DopingVariationSpec::paper_default(nodes, 0.5);
        let pairs = spec.pair_with_nodes(&[0.1, -0.2]);
        assert_eq!(pairs, vec![(NodeId(5), 0.1), (NodeId(9), -0.2)]);
    }

    #[test]
    #[should_panic(expected = "delta length mismatch")]
    fn wrong_delta_length_panics() {
        let spec = DopingVariationSpec::paper_default(vec![NodeId(0)], 0.5);
        let _ = spec.pair_with_nodes(&[0.1, 0.2]);
    }
}
