//! Demonstrates the paper's smart geometric variation model (Section III.A):
//! large interface roughness breaks the mesh under the traditional model but
//! not under the continuous-surface propagation model (Fig. 1).
//!
//! Run with `cargo run --release --example roughness_model`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vaem::mesh::quality::assess;
use vaem::mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem::numeric::dense::Cholesky;
use vaem::variation::{
    apply_roughness, covariance_matrix, standard_normal_vector, CorrelationKernel,
    FacetPerturbation, GeometricModel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let structure = build_metalplug_structure(&MetalPlugConfig::default());
    let facet = structure
        .facet("plug1_interface")
        .expect("structure declares the plug1 interface facet");
    println!(
        "perturbing the {}-node metal-semiconductor interface of plug1",
        facet.nodes.len()
    );

    let positions: Vec<[f64; 3]> = facet
        .nodes
        .iter()
        .map(|&n| structure.mesh.position(n))
        .collect();
    let mut rng = StdRng::seed_from_u64(42);

    println!();
    println!("sigma_G [um]   traditional   continuous-surface");
    for sigma in [0.25, 0.5, 1.0, 1.5] {
        let cov = covariance_matrix(
            &positions,
            sigma,
            CorrelationKernel::Exponential { length: 0.7 },
        );
        let chol = Cholesky::new_regularized(&cov)?;
        let offsets = chol.correlate(&standard_normal_vector(&mut rng, facet.nodes.len()));

        let verdict = |model: GeometricModel| {
            let mut mesh = structure.mesh.clone();
            apply_roughness(
                &mut mesh,
                model,
                &[FacetPerturbation::new(facet, offsets.clone())],
            );
            let report = assess(&mesh, 1e-9);
            if report.is_valid() {
                "valid".to_string()
            } else {
                format!("{} crossings", report.crossing_count)
            }
        };
        println!(
            "{:>10.2}   {:<12}  {:<12}",
            sigma,
            verdict(GeometricModel::Traditional),
            verdict(GeometricModel::ContinuousSurface)
        );
    }
    println!();
    println!(
        "the continuous model keeps the mesh usable even when sigma_G exceeds the 1 um grid pitch"
    );
    Ok(())
}
