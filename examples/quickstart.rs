//! Quickstart: build the paper's metal-plug structure, solve the nominal
//! coupled problem and print the interface current and a capacitance.
//!
//! Run with `cargo run --release --example quickstart`.

use vaem::fvm::{postprocess, CoupledSolver, SolverOptions};
use vaem::mesh::structures::metalplug::{build_metalplug_structure, MetalPlugConfig};
use vaem::physics::DopingProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the structure: two metal plugs on a doped silicon block.
    let structure = build_metalplug_structure(&MetalPlugConfig::default());
    println!(
        "structure: {} nodes, {} links, {} terminals",
        structure.mesh.node_count(),
        structure.mesh.link_count(),
        structure.contacts.len()
    );

    // 2. Assign the doping: uniform 1e17 cm^-3 donors in the silicon.
    let semis = structure.semiconductor_nodes();
    let doping = DopingProfile::uniform_donor(structure.mesh.node_count(), &semis, 1.0e5);

    // 3. Bind the coupled solver and compute the DC operating point.
    let solver = CoupledSolver::new(&structure, &doping, SolverOptions::default())?;
    let dc = solver.solve_dc()?;
    println!(
        "DC operating point converged in {} Newton iterations",
        dc.newton_iterations
    );

    // 4. Frequency-domain solve at 1 GHz with plug1 driven at 1 V.
    let ac = solver.solve_ac(&dc, "plug1", 1.0e9)?;
    let current = postprocess::interface_current(&solver, &ac, "plug1")?;
    println!(
        "interface current |J| = {:.6} uA (solver: {}, residual {:.2e})",
        current.abs() * 1.0e6,
        ac.solver_strategy,
        ac.linear_residual
    );

    // 5. A capacitance entry: plug1-to-plug2 coupling at 1 MHz.
    let column = postprocess::capacitance_column(&solver, &dc, "plug1", 1.0e6)?;
    println!(
        "C(plug1, plug1) = {:.4} fF,  C(plug1, plug2) = {:.4} fF",
        column["plug1"] * 1.0e15,
        column["plug2"] * 1.0e15
    );
    Ok(())
}
