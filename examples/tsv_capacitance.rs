//! Example B of the paper (Table II): variational capacitance extraction of
//! the two-TSV structure under lateral-wall roughness and substrate RDF.
//!
//! Run with `cargo run --release --example tsv_capacitance`.
//! This uses the scaled-down "quick" setup; set `VAEM_TSV_MC` to raise the
//! Monte-Carlo sample count.

use vaem::experiments::tsv::TsvExperiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut experiment = TsvExperiment::quick();
    if let Ok(mc) = std::env::var("VAEM_TSV_MC") {
        if let Ok(n) = mc.parse::<usize>() {
            experiment = experiment.with_mc_runs(n);
        }
    }
    println!(
        "running Example B on a {}-node mesh with {} MC samples...",
        experiment.analysis().structure().mesh.node_count(),
        experiment.mc_runs
    );

    let result = experiment.run()?;
    println!();
    println!("{}", result.table().render());
    println!(
        "speed-up of SSCM over MC (wall clock): {:.1}x with {} vs {} solver runs",
        result.speedup(),
        result.collocation_runs,
        result.mc_runs
    );
    Ok(())
}
