//! Example A of the paper (Table I): variational analysis of the current
//! through the metal–semiconductor interface under surface roughness and
//! random doping fluctuation, comparing SSCM against Monte Carlo.
//!
//! Run with `cargo run --release --example metalplug_current`.
//! Set `VAEM_TABLE1_ROW` to `geometry`, `doping` or `both` to pick a row.

use vaem::experiments::metalplug::{MetalPlugExperiment, TableOneRow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let row = match std::env::var("VAEM_TABLE1_ROW").as_deref() {
        Ok("geometry") => TableOneRow::GeometryOnly,
        Ok("doping") => TableOneRow::DopingOnly,
        _ => TableOneRow::Both,
    };
    let experiment = MetalPlugExperiment::quick().with_row(row);
    println!(
        "running Example A ({}), this takes a little while...",
        row.label()
    );

    let result = experiment.run()?;
    println!();
    println!("{}", result.table().render());
    println!(
        "SSCM used {} deterministic solves, Monte Carlo used {}.",
        result.collocation_runs, result.mc_runs
    );
    for g in &result.reductions {
        println!(
            "variable reduction for '{}': {} correlated -> {} independent",
            g.name, g.full_dim, g.reduced_dim
        );
    }
    Ok(())
}
